"""The virtual-clock simulator driving the real serving stack.

:class:`Simulator` replays a compiled :class:`~repro.sim.WorkloadTrace`
through a live :class:`~repro.serve.Gateway` — the actual sharded services,
strategy engine, micro-batcher, and wire codec, nothing mocked — one virtual
**tick** at a time.  Within a tick it mirrors how the stack is really
driven, while keeping the run replayable:

1. the tick's wire lines are decoded through :func:`repro.serve.decode_line`
   (malformed lines become error envelopes right there, like ``repro serve``);
2. **mutators** (adapt and stream requests) run first, each target's
   requests strictly in trace order but different targets concurrently —
   per-target state is independently locked and seeded, so cross-target
   interleaving cannot change any result (with ``train_batching > 1`` the
   per-target chains instead advance in lock-step waves through one
   :meth:`~repro.serve.Gateway.submit_many` per wave, letting the gateway
   stack compatible adaptations into batched training passes);
3. **reports** run next (reads against settled state);
4. **predictions** run last as one :meth:`~repro.serve.Gateway.submit_many`
   burst, exercising the micro-batched coalescing path.

The phase barriers remove the only nondeterminism a single ``submit_many``
of mixed kinds would have (a predict racing the adapt that creates its
model), and they cost nothing the workload cares about: within a tick the
virtual clock does not advance, so "later in the same tick" has no meaning
a client could observe.

Every envelope is appended to a canonical **transcript**: one JSON line per
request with sorted keys and every ``duration_seconds`` scrubbed to ``0.0``
(wall clock is the one thing an otherwise deterministic stack cannot
reproduce).  Same spec + seed → byte-identical transcript, which
:func:`verify_replay` checks by running a workload twice — the determinism
oracle every future batching/sharding/caching PR can be held to.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

# scrub_wall_clock moved to repro.obs.clock (every layer stamping a
# duration needs it now, not just the simulator); re-exported here so
# ``from repro.sim.simulator import scrub_wall_clock`` keeps working.
from ..obs import Tracer, now, scrub_wall_clock
from ..serve.gateway import Gateway
from ..serve.loop import decode_line
from ..serve.protocol import AdaptRequest, PredictRequest, ReportRequest, StreamRequest
from .faults import FaultPlan, create_fault_plan
from .invariants import InvariantSuite, RequestRecord
from .spec import TraceEvent, WorkloadSpec, WorkloadTrace, compile_trace

__all__ = [
    "scrub_wall_clock",
    "SimulationResult",
    "Simulator",
    "build_gateway",
    "run_simulation",
    "verify_replay",
    "verify_transport",
]


@dataclass
class SimulationResult:
    """Everything one simulation run produced.

    ``transcript_lines`` is the canonical envelope transcript (one JSON line
    per request, sorted keys, wall clock scrubbed); ``invariant_report`` is
    the :class:`~repro.sim.InvariantSuite` verdict plus the fault log.
    """

    spec: WorkloadSpec
    users: dict[str, str]
    n_ticks: int
    n_requests: int
    n_ok: int
    n_errors: int
    kind_counts: dict[str, int]
    transcript_lines: list[str]
    invariant_report: dict
    faults: list[dict]
    wall_seconds: float
    #: Fleet-wide ``repro.metrics/v1`` snapshot taken after the last tick
    #: (gateway + shards merged).  Not part of the transcript: timing-valued
    #: entries are wall-clock and would break byte-replay.
    metrics: dict | None = None
    events_per_second: float = field(init=False)

    def __post_init__(self) -> None:
        self.events_per_second = (
            self.n_requests / self.wall_seconds if self.wall_seconds > 0 else float("inf")
        )

    @property
    def ok(self) -> bool:
        """Whether every invariant held."""
        return bool(self.invariant_report.get("ok"))

    @property
    def transcript_text(self) -> str:
        """The canonical transcript as one newline-terminated string."""
        return "\n".join(self.transcript_lines) + "\n" if self.transcript_lines else ""

    @property
    def transcript_digest(self) -> str:
        """SHA-256 of the canonical transcript (quick replay comparisons)."""
        return hashlib.sha256(self.transcript_text.encode("utf-8")).hexdigest()

    def summary(self) -> str:
        """Human-readable run summary (printed to stderr by the CLI)."""
        spec = self.spec
        lines = [
            f"[simulate] task={spec.task} scheme={spec.scheme} scale={spec.scale} "
            f"seed={spec.seed} fault_plan={spec.fault_plan}",
            f"  ticks={self.n_ticks} users={len(self.users)} requests={self.n_requests} "
            f"ok={self.n_ok} errors={self.n_errors} "
            f"({self.events_per_second:,.0f} events/s)",
            f"  kinds: "
            + " ".join(f"{kind}={count}" for kind, count in sorted(self.kind_counts.items())),
            f"  faults injected: {len(self.faults)}",
            f"  transcript: {len(self.transcript_lines)} lines "
            f"sha256={self.transcript_digest[:16]}…",
        ]
        for name, entry in self.invariant_report.get("invariants", {}).items():
            status = "ok" if entry["ok"] else "FAIL"
            lines.append(f"  invariant {name}: {status} ({entry['checks']} checks)")
            for violation in entry["violations"][:3]:
                lines.append(f"    - tick {violation['tick']}: {violation['detail']}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-safe result summary (transcript carried as digest only)."""
        return {
            "spec": self.spec.to_dict(),
            "users": dict(self.users),
            "n_ticks": self.n_ticks,
            "n_requests": self.n_requests,
            "n_ok": self.n_ok,
            "n_errors": self.n_errors,
            "kind_counts": dict(self.kind_counts),
            "events_per_second": self.events_per_second,
            "wall_seconds": self.wall_seconds,
            "transcript_lines": len(self.transcript_lines),
            "transcript_sha256": self.transcript_digest,
            "faults": list(self.faults),
            "invariants": self.invariant_report,
            "metrics": self.metrics,
        }


def build_gateway(
    spec: WorkloadSpec, tracer: Tracer | None = None, snapshot_dir: str | None = None
) -> Gateway:
    """Stand up the gateway a spec describes (registry task + scheme).

    ``config_overrides`` land on the shared :class:`~repro.core.TasfarConfig`
    — scenario files use this to pin short adaptation schedules
    (``{"adaptation_epochs": 3, "early_stop": false}``) so a simulation run
    is fast *and* independent of early-stopping wall-clock noise.  An
    optional ``tracer`` records per-request spans for the whole run.

    With ``spec.snapshots`` the gateway gets the warm snapshot tier.
    ``snapshot_dir`` names where it lives (the CLI's ``--snapshot-dir``
    pass-through — passing one enables the tier even when the spec leaves
    ``snapshots`` off); by default each build gets a **fresh private
    temporary directory** whose lifetime is tied to the gateway — a replay
    verification then builds two gateways and each starts from an empty
    store, keeping the two transcripts byte-identical by construction.
    """
    import tempfile

    from ..core.config import TasfarConfig

    config = TasfarConfig(seed=spec.seed, **dict(spec.config_overrides))
    service_options = {
        "min_adapt_events": spec.min_adapt_events,
        "readapt_budget": spec.readapt_budget,
        "drift_threshold": spec.drift_threshold,
    }
    if spec.warm_epochs is not None:
        service_options["warm_epochs"] = spec.warm_epochs
    snapshot_tmp = None
    snapshots = spec.snapshots or snapshot_dir is not None
    if snapshots and snapshot_dir is None:
        snapshot_tmp = tempfile.TemporaryDirectory(prefix="repro-snapshots-")
        snapshot_dir = snapshot_tmp.name
    gateway = Gateway.from_task(
        spec.task,
        scheme=spec.scheme,
        scale=spec.scale,
        seed=spec.seed,
        config=config,
        n_shards=spec.n_shards,
        shard_workers=spec.shard_workers,
        executor=spec.executor,
        train_batching=spec.train_batching,
        max_cached_models=spec.cache_capacity(),
        base_seed=spec.seed,
        service_options=service_options,
        tracer=tracer,
        snapshot_dir=snapshot_dir if snapshots else None,
    )
    # Pin the temp dir to the gateway: the spill files live exactly as long
    # as the stack that wrote them.
    gateway._snapshot_tmpdir = snapshot_tmp
    return gateway


class Simulator:
    """Replay one workload spec against a live gateway, tick by tick.

    Parameters
    ----------
    spec:
        The workload to run (validated on entry).
    gateway:
        Optional pre-built gateway (tests inject cheap fixtures); defaults
        to :func:`build_gateway`.  The caller owns a supplied gateway's
        lifetime; a gateway the simulator built itself is closed by
        :meth:`close`.
    task:
        Optional :class:`~repro.data.AdaptationTask` the trace compiles
        against; defaults to the registry bundle named by the spec and must
        match whatever the gateway actually serves.
    tracer:
        Optional :class:`~repro.obs.Tracer` wired into a gateway the
        simulator builds itself (ignored when a pre-built ``gateway`` is
        supplied — attach the tracer to that gateway directly instead).
    """

    def __init__(
        self,
        spec: WorkloadSpec,
        gateway: Gateway | None = None,
        task=None,
        tracer: Tracer | None = None,
    ) -> None:
        spec.validate()
        self.spec = spec
        # Trace and fault plan first: they catch the spec errors validate()
        # cannot (unknown scenario names, unknown fault options) *before*
        # the expensive gateway build, so a bad spec fails fast and leaks
        # nothing.
        self.trace: WorkloadTrace = compile_trace(spec, task=task)
        self.fault: FaultPlan = create_fault_plan(spec.fault_plan, **dict(spec.fault_options))
        self.trace = self.fault.mutate_trace(
            self.trace, np.random.default_rng([int(spec.seed) % (2**31), 0xFA])
        )
        self._owns_gateway = gateway is None
        self.gateway = gateway if gateway is not None else build_gateway(spec, tracer=tracer)
        self.suite = InvariantSuite(self.gateway, verify_coalescing=spec.verify_coalescing)
        # One long-lived pool for the per-tick mutator chains; per-tick
        # executors would churn threads inside the simulator's hot loop.
        self._chain_pool = ThreadPoolExecutor(max_workers=8, thread_name_prefix="sim-chain")
        self.virtual_time = 0.0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Execute every tick and return the transcript + invariant report."""
        start = now()
        transcript: list[str] = []
        kind_counts: dict[str, int] = {}
        n_ok = n_errors = 0
        for tick, events in enumerate(self.trace.ticks):
            self.virtual_time = tick * self.spec.tick_seconds
            self.fault.before_tick(self, tick)
            records = self._run_tick(events)
            self.suite.observe_tick(tick, records)
            for record in records:
                envelope = record.envelope
                kind_counts[envelope.kind] = kind_counts.get(envelope.kind, 0) + 1
                if envelope.ok:
                    n_ok += 1
                else:
                    n_errors += 1
                transcript.append(
                    json.dumps(
                        {
                            "tick": tick,
                            "seq": record.event.seq,
                            "virtual_time": self.virtual_time,
                            "envelope": scrub_wall_clock(envelope.to_dict()),
                        },
                        sort_keys=True,
                    )
                )
        wall = now() - start
        report = self.suite.report()
        report["faults"] = list(self.fault.log)
        report["fault_plan"] = self.fault.describe()
        return SimulationResult(
            spec=self.spec,
            users=dict(self.trace.users),
            n_ticks=self.spec.n_ticks,
            n_requests=n_ok + n_errors,
            n_ok=n_ok,
            n_errors=n_errors,
            kind_counts=kind_counts,
            transcript_lines=transcript,
            invariant_report=report,
            faults=list(self.fault.log),
            wall_seconds=wall,
            metrics=self.gateway.metrics_snapshot(),
        )

    def _run_tick(self, events: list[TraceEvent]) -> list[RequestRecord]:
        """Serve one tick's wire lines through the three-phase schedule."""
        records: list[RequestRecord | None] = [None] * len(events)
        mutators: "OrderedDict[str, list[tuple[int, object]]]" = OrderedDict()
        reads: list[tuple[int, object]] = []
        predicts: list[tuple[int, object]] = []
        requests: dict[int, object] = {}
        for index, event in enumerate(events):
            request, error = decode_line(event.line)
            if request is None:
                # A decode failure answers in place; a blank line answers
                # nothing at all — both exactly like the serving loop.
                if error is not None:
                    records[index] = RequestRecord(event, None, error)
                continue
            requests[index] = request
            if isinstance(request, (AdaptRequest, StreamRequest)):
                mutators.setdefault(request.target_id, []).append((index, request))
            elif isinstance(request, ReportRequest):
                reads.append((index, request))
            elif isinstance(request, PredictRequest):
                predicts.append((index, request))

        # Phase 1 — mutators: per-target chains in trace order, chains in
        # parallel (cross-target state is independent by construction).
        if mutators and self.spec.train_batching > 1:
            # Wave rounds: the front request of every non-empty chain goes
            # out as one submit_many burst so the gateway can stack
            # compatible adaptations.  A chain advances exactly one request
            # per wave, so per-target order stays strict, and a wave never
            # holds two requests for the same target — results match the
            # serial chains exactly.
            chains = [list(chain) for chain in mutators.values()]
            while chains:
                wave = [chain.pop(0) for chain in chains]
                envelopes = self.gateway.submit_many([request for _, request in wave])
                for (index, request), envelope in zip(wave, envelopes):
                    records[index] = RequestRecord(events[index], request, envelope)
                chains = [chain for chain in chains if chain]
        elif mutators:
            futures = [
                self._chain_pool.submit(self._run_chain, chain)
                for chain in mutators.values()
            ]
            for future in futures:
                for index, envelope in future.result():
                    records[index] = RequestRecord(events[index], requests[index], envelope)

        # Phase 2 — reads against settled state.
        if reads:
            envelopes = self.gateway.submit_many([request for _, request in reads])
            for (index, request), envelope in zip(reads, envelopes):
                records[index] = RequestRecord(events[index], request, envelope)

        # Phase 3 — the tick's prediction burst, micro-batched.
        if predicts:
            envelopes = self.gateway.submit_many([request for _, request in predicts])
            for (index, request), envelope in zip(predicts, envelopes):
                records[index] = RequestRecord(events[index], request, envelope)

        return [record for record in records if record is not None]

    def _run_chain(self, chain: list[tuple[int, object]]) -> list[tuple[int, object]]:
        return [(index, self.gateway.submit(request)) for index, request in chain]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the chain pool and any gateway this simulator built."""
        self._chain_pool.shutdown(wait=True)
        if self._owns_gateway:
            self.gateway.close()

    def __enter__(self) -> "Simulator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def run_simulation(
    spec: WorkloadSpec, gateway: Gateway | None = None, task=None, tracer: Tracer | None = None
) -> SimulationResult:
    """Build, run, and tear down one simulation; returns its result."""
    with Simulator(spec, gateway=gateway, task=task, tracer=tracer) as simulator:
        return simulator.run()


def verify_replay(
    spec: WorkloadSpec, gateway_factory=None, task=None, tracer: Tracer | None = None
) -> tuple[bool, str | None, SimulationResult]:
    """Run a workload twice from scratch and compare transcripts byte for byte.

    Returns ``(ok, first_difference, first_result)``.  ``gateway_factory``
    lets tests rebuild their cheap fixture gateway per run; by default each
    run builds a fresh gateway from the spec (the task bundle itself is
    cached and immutable, so sharing it is safe).  A ``tracer`` is applied
    to the *first* run only (spans carry wall-clock timings, so tracing
    both runs would record two different-but-equivalent sets).
    """
    results = []
    for attempt in range(2):
        gateway = gateway_factory() if gateway_factory is not None else None
        run_tracer = tracer if attempt == 0 else None
        if gateway is not None:
            with Simulator(spec, gateway=gateway, task=task) as simulator:
                results.append(simulator.run())
            gateway.close()
        else:
            results.append(run_simulation(spec, task=task, tracer=run_tracer))
    first, second = results
    if first.transcript_text == second.transcript_text:
        return True, None, first
    detail = _first_divergence(first, second, "run1", "run2")
    return False, detail, first


def _first_divergence(a: SimulationResult, b: SimulationResult, name_a: str, name_b: str) -> str:
    detail = "transcript lengths differ"
    for line_a, line_b in zip(a.transcript_lines, b.transcript_lines):
        if line_a != line_b:
            detail = f"first divergence:\n  {name_a}: {line_a}\n  {name_b}: {line_b}"
            break
    return detail


def verify_transport(
    spec: WorkloadSpec,
    address: tuple[str, int] | None = None,
    task=None,
    tracer: Tracer | None = None,
    max_pending: int = 256,
) -> tuple[bool, str | None, SimulationResult, SimulationResult]:
    """Replay a workload over TCP and in-process; compare byte for byte.

    The transport-transparency oracle: the same spec runs twice from
    scratch — once driven through a live socket server (every request and
    burst crossing the wire via :class:`~repro.net.RemoteGateway`, bursts
    preserved by the blank-line burst markers) and once entirely
    in-process — and the two canonical transcripts must be identical to
    the byte.  ``verify_replay`` pins *determinism*; this pins *the wire
    adds nothing and loses nothing*, fault plans included.

    With no ``address`` a server is stood up in-process, backed by a fresh
    gateway built from the spec; the remote gateway keeps a ``local``
    handle to it so the invariant suite (shard placement, metrics
    reconciliation — now including the ``net.*`` transport counters) runs
    at full strength during the TCP leg.  With an ``address`` (a server
    someone else started, e.g. ``repro simulate --connect``) the TCP leg
    checks what it can reach: transcripts fully, server-side metrics not
    at all.  Either way the server must serve the *same spec* — state is
    cumulative, so a reused server would answer differently by design.

    Returns ``(ok, first_difference, tcp_result, local_result)``.
    """
    from ..net import NetServer, RemoteGateway

    server = None
    if address is None:
        backing = build_gateway(spec, tracer=tracer)
        server = NetServer(backing, max_pending=max_pending)
        host, port = server.start()
        remote = RemoteGateway(host, port, local=backing)
    else:
        host, port = address
        remote = RemoteGateway(host, int(port), n_shards=spec.n_shards)
    try:
        with Simulator(spec, gateway=remote, task=task) as simulator:
            tcp_result = simulator.run()
    finally:
        if server is not None:
            server.stop()
        remote.close()
    local_result = run_simulation(spec, task=task)
    if tcp_result.transcript_text == local_result.transcript_text:
        return True, None, tcp_result, local_result
    return (
        False,
        _first_divergence(tcp_result, local_result, "tcp", "in-process"),
        tcp_result,
        local_result,
    )
