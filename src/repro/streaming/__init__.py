"""Streaming adaptation: online density maps, drift detection, re-adaptation.

This package layers a streaming workload on top of the batch runtime
(:mod:`repro.runtime`):

* :class:`OnlineDensityMap` — a :class:`~repro.core.LabelDensityMap` kept
  fresh with incremental batch updates and optional exponential decay;
* :class:`DriftDetector` / :class:`DensityDriftMonitor` — a Page-Hinkley
  test over the divergence between the recent stream and the adapted-time
  density map;
* :class:`StreamingAdaptationService` — ``ingest(target_id, batch)`` with
  buffering, online map maintenance, and drift- or budget-triggered
  warm-start re-adaptation of the cached adapted model.

See ``examples/streaming_users.py`` for a walkthrough and
``python -m repro.cli stream --help`` for the CLI entry point; the
non-stationary stream generators live in :mod:`repro.data.drift`.
"""

from .drift import DensityDriftMonitor, DriftDetector, DriftObservation
from .online_density import OnlineDensityMap
from .service import StreamEvent, StreamingAdaptationService

__all__ = [
    "DensityDriftMonitor",
    "DriftDetector",
    "DriftObservation",
    "OnlineDensityMap",
    "StreamEvent",
    "StreamingAdaptationService",
]
