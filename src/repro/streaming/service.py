"""Streaming multi-target adaptation service.

The batch :class:`~repro.runtime.AdaptationService` assumes each target hands
over its unlabeled data once.  Real target domains — a pedestrian walking all
day, a taxi district across rush hours — produce *streams* whose label
distribution drifts.  :class:`StreamingAdaptationService` extends the batch
service with one new verb, :meth:`ingest`, and three pieces of per-target
state behind it:

* a **buffer** of un-adapted event batches;
* an **online density map** of recent confident predictions
  (:class:`~repro.streaming.OnlineDensityMap` with exponential decay), kept
  on the grid of the map estimated at the last adaptation;
* a **drift monitor** (:class:`~repro.streaming.DensityDriftMonitor`)
  Page-Hinkley-testing the divergence between the recent map and the
  adapted-time map.

The service reacts lazily: batches are only buffered until either (a) the
target has never been adapted and the buffer reaches ``min_adapt_events``
(cold adaptation from the source model), or (b) the target is adapted and
the drift monitor fires or the buffer reaches ``readapt_budget``
(**warm-start** re-adaptation: the *cached adapted model* is fine-tuned on
the recent window with a shorter schedule, instead of repeating the full
cold adaptation from the source model).  Warm starts are the measurable
speed win — see ``benchmarks/test_bench_streaming.py``.

Everything stays deterministic: probe predictions and each re-adaptation
round are seeded from the target id and the round/step counter, so replaying
the same stream reproduces the same events, models, and reports bit for bit.
"""

from __future__ import annotations

import copy
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass, field
from threading import Lock
from typing import Iterable, Mapping

import numpy as np

from ..core.adapter import NoConfidentSamplesError, SourceCalibration
from ..core.config import TasfarConfig
from ..core.density_map import LabelDensityMap
from ..core.estimator import LabelDistributionEstimator
from ..engine.rng import PROBE_STREAM, stream_seed_sequence
from ..engine.strategy import AdaptationStrategy, StackJob, StrategyOutcome
from ..nn.losses import Loss
from ..nn.models import RegressionModel
from ..obs import MetricsRegistry, Stopwatch, use_metrics
from ..runtime.report import AdaptationReport
from ..runtime.service import AdaptationService, canonical_target_id
from ..runtime.snapshots import (
    SnapshotError,
    SnapshotStore,
    decode_drift_state,
    encode_drift_state,
)
from ..uncertainty.mc_dropout import MCDropoutPredictor
from .drift import DensityDriftMonitor, DriftDetector

__all__ = ["StreamEvent", "StreamingAdaptationService"]


@dataclass
class StreamEvent:
    """JSON-safe record of one :meth:`StreamingAdaptationService.ingest` call.

    Attributes
    ----------
    target_id:
        The stream this event belongs to.
    step:
        1-based per-target ingest counter.
    n_events:
        Number of samples in this batch.
    total_events:
        Cumulative samples ingested for this target so far.
    buffered:
        Samples waiting in the buffer *after* this call (zero right after
        an adaptation consumed the buffer).
    action:
        ``"buffered"``, ``"cold_adapt"``, ``"warm_adapt"`` or
        ``"adapt_failed"`` (an adaptation was due but no buffered sample
        cleared the confidence threshold; the buffer is kept and the next
        ingest retries).
    trigger:
        Why an adaptation ran (or was attempted): ``"warmup"`` (first
        adaptation), ``"budget"`` (buffer reached ``readapt_budget``) or
        ``"drift"``; ``None`` while merely buffering.
    drift_distance:
        Total-variation distance between the recent-window map and the
        adapted-time map (``None`` before the first adaptation or when the
        batch had no confident samples).
    drift_statistic:
        Page-Hinkley statistic after this batch (``None`` likewise).
    drifted:
        Whether the drift detector flagged this batch.
    duration_seconds:
        Wall-clock cost of the whole ingest call (probing plus any
        re-adaptation).
    """

    target_id: str
    step: int
    n_events: int
    total_events: int
    buffered: int
    action: str
    trigger: str | None = None
    drift_distance: float | None = None
    drift_statistic: float | None = None
    drifted: bool = False
    duration_seconds: float = 0.0

    def to_dict(self) -> dict:
        """Plain-builtins dictionary form (safe for ``json.dumps``)."""
        return asdict(self)


@dataclass
class _TargetStream:
    """Per-target mutable streaming state (guarded by its own lock)."""

    lock: Lock = field(default_factory=Lock)
    buffer: list[np.ndarray] = field(default_factory=list)
    n_buffered: int = 0
    total_events: int = 0
    step: int = 0
    monitor: DensityDriftMonitor | None = None
    events: list[StreamEvent] = field(default_factory=list)
    n_cold: int = 0
    n_warm: int = 0
    #: last committed ``repro.snapshot/v1`` stream section — the fallback a
    #: concurrent spill uses when this state's lock is held mid-ingest
    spill_cache: dict | None = None


@dataclass
class _PendingIngest:
    """One target's ingest decision, frozen before any (stacked) adaptation.

    The stacked ``train_batching`` path splits :meth:`ingest` in two: a
    *decide* phase that buffers the batch, probes for drift, and snapshots
    everything an adaptation would consume (inputs, seed, warm base model),
    and a *commit* phase after the grouped fine-tune.  This record carries
    the decision between the phases; only its owning target's state is ever
    referenced, which is what makes the phase split equivalent to serial
    per-target ingestion.
    """

    target_id: str
    state: _TargetStream
    watch: Stopwatch
    step: int
    n_events: int
    action: str = "buffered"
    trigger: str | None = None
    observation: object | None = None
    #: set by :meth:`StreamingAdaptationService._mark_due`
    due: bool = False
    warm: bool = False
    base_model: RegressionModel | None = None
    inputs: np.ndarray | None = None
    n_snapshot: int = 0
    round_index: int = 0
    seed: int = 0


class StreamingAdaptationService(AdaptationService):
    """Adapt a fleet of target domains from *streams* instead of batches.

    Parameters (beyond :class:`~repro.runtime.AdaptationService`)
    ----------
    min_adapt_events:
        Buffered samples required before the first (cold) adaptation of a
        target; earlier batches are only buffered.
    readapt_budget:
        Buffered samples that force a re-adaptation even without a drift
        alarm, bounding how stale an adapted model may grow.
    max_buffer_events:
        Hard cap on buffered samples per target; the oldest batches are
        dropped beyond it.  Without a cap, a stream whose samples never
        clear the confidence threshold (every adaptation attempt fails)
        would buffer the entire stream forever.  Defaults to four times the
        larger of ``min_adapt_events`` and ``readapt_budget``.
    warm_epochs:
        Fine-tuning epochs for warm-start re-adaptations; defaults to a
        quarter of the active strategy's cold epoch budget (at least one).
        The short schedule is what makes a warm re-adaptation cheaper than
        a cold one.
    window_decay:
        Exponential decay of the recent-window density map fed to the drift
        monitor.
    drift_threshold, drift_delta, drift_min_batches:
        Page-Hinkley parameters of the per-target drift detectors.  The
        defaults are tuned to the total-variation scale of the divergence
        statistic on the bundled tasks: a sustained rise of a few hundredths
        fires within a handful of batches, while stationary noise does not.
    drift_warmup_events:
        Confident events the recent window must accumulate after each
        (re-)adaptation before observations reach the detector — an almost
        empty window diverges from any reference for small-sample reasons
        alone, and those early distances would poison the Page-Hinkley
        baseline.
    drift_mc_samples:
        MC-dropout passes used to probe incoming batches; defaults to
        ``config.n_mc_samples``.  Probing is on the ingest hot path, so a
        smaller value buys throughput at some monitor noise.
    """

    def __init__(
        self,
        source_model: RegressionModel,
        calibration: SourceCalibration,
        config: TasfarConfig | None = None,
        loss: Loss | None = None,
        *,
        strategy: AdaptationStrategy | None = None,
        max_cached_models: int = 8,
        base_seed: int = 0,
        min_adapt_events: int = 32,
        readapt_budget: int = 128,
        max_buffer_events: int | None = None,
        warm_epochs: int | None = None,
        window_decay: float = 0.35,
        drift_threshold: float = 0.10,
        drift_delta: float = 0.01,
        drift_min_batches: int = 3,
        drift_warmup_events: int = 32,
        drift_mc_samples: int | None = None,
        metrics: MetricsRegistry | None = None,
        snapshot_store: SnapshotStore | None = None,
    ) -> None:
        if calibration is None:
            # The base service can run calibration-free behind an explicit
            # strategy, but streaming cannot: drift probing and the
            # reference density maps both need the source confidence
            # threshold and the sigma calibrators, whatever the scheme.
            raise ValueError(
                "StreamingAdaptationService always needs the source calibration "
                "(drift probing uses its threshold and calibrators), even when an "
                "explicit strategy is supplied"
            )
        super().__init__(
            source_model,
            calibration,
            config,
            loss,
            strategy=strategy,
            max_cached_models=max_cached_models,
            base_seed=base_seed,
            metrics=metrics,
            snapshot_store=snapshot_store,
        )
        if min_adapt_events < 1:
            raise ValueError("min_adapt_events must be at least 1")
        if readapt_budget < 1:
            raise ValueError("readapt_budget must be at least 1")
        self.min_adapt_events = int(min_adapt_events)
        self.readapt_budget = int(readapt_budget)
        floor = max(self.min_adapt_events, self.readapt_budget)
        if max_buffer_events is None:
            max_buffer_events = 4 * floor
        if max_buffer_events < floor:
            raise ValueError(
                "max_buffer_events must be at least max(min_adapt_events, readapt_budget)"
            )
        self.max_buffer_events = int(max_buffer_events)
        if warm_epochs is None:
            # A quarter of the *strategy's* cold budget, so "warm is shorter
            # than cold" holds for every scheme (a baseline running 5-epoch
            # cold adaptations must not warm-start with 10).
            cold_budget = self.strategy.default_epochs
            if cold_budget is None:
                cold_budget = self.config.adaptation_epochs
            warm_epochs = max(1, cold_budget // 4)
        if warm_epochs < 1:
            raise ValueError("warm_epochs must be at least 1")
        self.warm_epochs = int(warm_epochs)
        self.window_decay = float(window_decay)
        self.drift_threshold = float(drift_threshold)
        self.drift_delta = float(drift_delta)
        self.drift_min_batches = int(drift_min_batches)
        self.drift_warmup_events = int(drift_warmup_events)
        self.drift_mc_samples = (
            self.config.n_mc_samples if drift_mc_samples is None else int(drift_mc_samples)
        )
        self._sigma_estimator = LabelDistributionEstimator(
            calibrators=self.calibration.calibrators,
            error_model=self.config.error_model,
        )
        self._streams: OrderedDict[str, _TargetStream] = OrderedDict()
        self._streams_lock = Lock()

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def ingest(self, target_id: str, batch: np.ndarray) -> StreamEvent:
        """Fold one batch of unlabeled target events into the stream.

        Buffers the batch, refreshes the target's recent density map, and —
        when warranted — runs a cold or warm-start (re-)adaptation.  Returns
        the :class:`StreamEvent` describing what happened; the full event
        log is available via :meth:`events_for`.
        """
        target_id = canonical_target_id(target_id)
        batch = np.asarray(batch, dtype=np.float64)
        if batch.ndim < 2 or len(batch) == 0:
            raise ValueError(
                "batch must be a non-empty array of shape (n_events, ...features)"
            )
        state = self._stream_state(target_id)
        with state.lock:
            watch = Stopwatch()
            state.step += 1
            state.buffer.append(batch)
            state.n_buffered += len(batch)
            state.total_events += len(batch)
            self.metrics.counter("stream.ingest_batches")
            self.metrics.counter("stream.ingest_events", len(batch))
            # Bound the buffer: drop the oldest batches (never the newest)
            # so a target whose adaptations keep failing can't hoard the
            # whole stream in memory.
            while state.n_buffered > self.max_buffer_events and len(state.buffer) > 1:
                dropped = state.buffer.pop(0)
                state.n_buffered -= len(dropped)
                self.metrics.counter("stream.buffer_dropped_events", len(dropped))

            action, trigger = "buffered", None
            observation = None
            adapted = (state.n_cold + state.n_warm) > 0
            if not adapted:
                if state.n_buffered >= self.min_adapt_events:
                    action = self._try_adapt_from_buffer(target_id, state, base_model=None)
                    trigger = "warmup"
            else:
                # state.monitor can be None for an adapted target when no
                # reference density map could be estimated (non-TASFAR scheme,
                # nothing confident in the window): drift detection is then
                # unavailable and re-adaptation falls back to budget-only.
                if state.monitor is not None:
                    observation = self._probe(target_id, state, batch)
                    if observation is not None:
                        self.metrics.counter("stream.drift.observations")
                        if observation.drifted:
                            self.metrics.counter("stream.drift.detections")
                drifted = observation is not None and observation.drifted
                if drifted or state.n_buffered >= self.readapt_budget:
                    trigger = "drift" if drifted else "budget"
                    # One lookup decides warm-vs-cold AND supplies the warm
                    # base model, so a concurrent eviction between "check"
                    # and "use" can't sneak a short warm schedule onto the
                    # source model.
                    base_model = self.model_for(target_id)
                    action = self._try_adapt_from_buffer(target_id, state, base_model=base_model)

            event = StreamEvent(
                target_id=target_id,
                step=state.step,
                n_events=len(batch),
                total_events=state.total_events,
                buffered=state.n_buffered,
                action=action,
                trigger=trigger,
                drift_distance=None if observation is None else float(observation.distance),
                drift_statistic=None if observation is None else float(observation.statistic),
                drifted=observation is not None and observation.drifted,
                duration_seconds=watch.elapsed(),
            )
            state.events.append(event)
            self.metrics.counter("stream.actions", action=event.action)
            self.metrics.observe("stream.ingest_seconds", event.duration_seconds)
            return event

    def ingest_many(
        self,
        batches: Mapping[str, np.ndarray] | Iterable[tuple[str, np.ndarray]],
        jobs: int = 1,
        train_batching: int = 1,
    ) -> dict[str, StreamEvent]:
        """Ingest one batch for each of several targets, optionally pooled.

        Mirrors :meth:`~repro.runtime.AdaptationService.adapt_many`: per-target
        state has its own lock and all seeding is per-target, so any ``jobs``
        value produces the same per-target event sequence as serial ingestion
        — provided ``max_cached_models`` covers the active fleet.  With fewer
        cache slots than streaming targets, which model is evicted (and hence
        whether a re-adaptation starts warm or cold) depends on the thread
        interleaving, so size the cache to the fleet when reproducibility
        matters.

        ``train_batching=K > 1`` groups the (re-)adaptations this call
        triggers — a drift-driven re-adapt storm, a cold-start wave — into
        stacked fine-tunes of up to K targets (warm and cold rounds stacked
        separately, since they run different epoch schedules), bit-identical
        to serial ingestion.  Decision logic (buffering, drift probes,
        triggers) still runs per target in input order; only the training
        is batched, on the calling thread or on the attached process worker
        pool.  ``jobs`` is a thread-pool knob for the *unstacked* path and
        is ignored when ``train_batching > 1``.  Raises :class:`ValueError`
        when the scheme or model cannot stack — no silent fallback.
        """
        items = list(batches.items()) if isinstance(batches, Mapping) else list(batches)
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        train_batching = self.check_train_batching(train_batching)
        if train_batching > 1 and len(items) > 1:
            return self._ingest_many_stacked(items, train_batching)
        if jobs == 1 or len(items) <= 1:
            return {canonical_target_id(tid): self.ingest(tid, batch) for tid, batch in items}
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            futures = [pool.submit(self.ingest, tid, batch) for tid, batch in items]
            return {
                canonical_target_id(tid): future.result()
                for (tid, _), future in zip(items, futures)
            }

    def _ingest_many_stacked(
        self, items: list[tuple[str, np.ndarray]], train_batching: int
    ) -> dict[str, StreamEvent]:
        """Ingest a fleet of batches with stacked (``train_batching``) training.

        Items are processed in **waves**: consecutive runs of distinct
        target ids.  A repeated id cuts a wave, because its second batch
        must observe the buffer/model state its first one produced —
        exactly what serial ingestion would see.  Within a wave every
        target's decision is independent (all streaming state is
        per-target), so deciding everything first and then batching the due
        adaptations is equivalent to interleaving them.
        """
        events: dict[str, StreamEvent] = {}
        wave: list[tuple[str, np.ndarray]] = []
        seen: set[str] = set()
        for tid, batch in items:
            tid = canonical_target_id(tid)
            if tid in seen:
                self._ingest_wave(wave, train_batching, events)
                wave, seen = [], set()
            wave.append((tid, batch))
            seen.add(tid)
        if wave:
            self._ingest_wave(wave, train_batching, events)
        return events

    def _ingest_wave(
        self,
        wave: list[tuple[str, np.ndarray]],
        train_batching: int,
        events: dict[str, StreamEvent],
    ) -> None:
        """Decide every target in the wave, then run the due adaptations stacked."""
        pendings = [self._ingest_decide(tid, batch) for tid, batch in wave]
        due = [pending for pending in pendings if pending.due]
        for warm in (False, True):
            # Warm and cold rounds never share a stack: they train under
            # different epoch schedules (and from different start models).
            group = [pending for pending in due if pending.warm is warm]
            for start in range(0, len(group), train_batching):
                self._adapt_pending_stack(group[start : start + train_batching], warm)
        for pending in pendings:
            events[pending.target_id] = self._ingest_finalize(pending)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _stream_state(self, target_id: str) -> _TargetStream:
        with self._streams_lock:
            state = self._streams.get(target_id)
            if state is None:
                state = self._streams[target_id] = self._restored_stream_state(target_id)
            return state

    def _restored_stream_state(self, target_id: str) -> _TargetStream:
        """A fresh per-target state, warm-resumed from the snapshot tier if possible.

        In-memory streaming state is never LRU-evicted, so this restore only
        matters for a *new process* picking up a fleet an earlier process
        spilled: the round counters and the drift monitor come back from the
        target's snapshot, making the next trigger a warm re-adaptation (the
        model itself resumes lazily through the cache-miss chokepoint).  The
        event buffer is deliberately transient and restarts empty.  A corrupt
        snapshot reads as absent here; the model-resume path is the one place
        that counts and discards it, so ``snapshots.corrupt`` is exact.
        """
        state = _TargetStream()
        store = self.snapshot_store
        if store is None:
            return state
        try:
            payload = store.load(target_id)
        except SnapshotError:
            return state
        if payload is None:
            return state
        stream = payload.get("stream")
        if not isinstance(stream, dict):
            return state
        try:
            monitor = decode_drift_state(
                stream.get("monitor"), error_model=self._sigma_estimator.error_model
            )
            n_cold = int(stream["n_cold"])
            n_warm = int(stream["n_warm"])
            step = int(stream["step"])
            total_events = int(stream["total_events"])
        except (SnapshotError, KeyError, TypeError, ValueError):
            return state
        state.monitor = monitor
        state.n_cold = n_cold
        state.n_warm = n_warm
        state.step = step
        state.total_events = total_events
        state.spill_cache = dict(stream)
        return state

    def _encode_stream_state(self, state: _TargetStream) -> dict:
        """The ``stream`` section of a snapshot (caller holds ``state.lock``).

        The buffer is deliberately not captured: buffered batches are raw
        un-adapted events a restarted stream can simply re-accumulate, and
        spilling them would multiply every snapshot by the buffer size.
        """
        return {
            "n_cold": int(state.n_cold),
            "n_warm": int(state.n_warm),
            "step": int(state.step),
            "total_events": int(state.total_events),
            "monitor": encode_drift_state(state.monitor),
        }

    def _snapshot_stream_state(self, target_id: str) -> dict | None:
        """Capture a spilling target's drift state without risking deadlock.

        The spiller may already hold a *different* target's stream lock (a
        commit whose ``_store_result`` evicted this target), so this never
        blocks on ``state.lock``: it try-acquires for a live capture and
        falls back to the last committed capture when the target is mid-
        ingest on another thread.
        """
        state = self._peek_state(target_id)
        if state is None:
            return None
        if state.lock.acquire(blocking=False):
            try:
                payload = self._encode_stream_state(state)
                state.spill_cache = payload
                return payload
            finally:
                state.lock.release()
        return state.spill_cache

    def _probe(self, target_id: str, state: _TargetStream, batch: np.ndarray):
        """Update the drift monitor with the batch's confident predictions.

        Probes with the target's *current* model (adapted if cached, source
        otherwise) so the monitor measures divergence from what is actually
        being served.  Returns ``None`` when no sample clears the confidence
        threshold — an all-uncertain batch carries no density information.
        """
        # The target's own cached model carries its own forward lock, so
        # drift probes for different targets overlap on a worker pool; only
        # the shared source-model fallback serializes globally.
        entry = self._model_and_lock(target_id)
        if entry is None:
            model, forward_lock = self._source_model, self._forward_lock
        else:
            model, forward_lock = entry
        predictor = MCDropoutPredictor(
            model,
            n_samples=self.drift_mc_samples,
            seed=stream_seed_sequence(self.target_seed(target_id), PROBE_STREAM, state.step),
        )
        with forward_lock:
            prediction = predictor.predict(batch)
        confident = np.flatnonzero(prediction.uncertainty <= self.calibration.threshold)
        if len(confident) == 0:
            return None
        sigmas = self._sigma_estimator.sigma_for(prediction.uncertainty[confident])
        assert state.monitor is not None
        return state.monitor.observe(prediction.mean[confident], sigmas)

    def _ingest_decide(self, target_id: str, batch: np.ndarray) -> _PendingIngest:
        """The decision half of :meth:`ingest`, with the adaptation deferred.

        Buffers the batch, updates the drift monitor, and decides whether an
        adaptation is due — mirroring :meth:`ingest` up to (but excluding)
        the training itself, whose inputs/seed/base-model are snapshotted
        onto the returned :class:`_PendingIngest` for the stacked runner.
        """
        target_id = canonical_target_id(target_id)
        batch = np.asarray(batch, dtype=np.float64)
        if batch.ndim < 2 or len(batch) == 0:
            raise ValueError(
                "batch must be a non-empty array of shape (n_events, ...features)"
            )
        state = self._stream_state(target_id)
        with state.lock:
            watch = Stopwatch()
            state.step += 1
            state.buffer.append(batch)
            state.n_buffered += len(batch)
            state.total_events += len(batch)
            self.metrics.counter("stream.ingest_batches")
            self.metrics.counter("stream.ingest_events", len(batch))
            while state.n_buffered > self.max_buffer_events and len(state.buffer) > 1:
                dropped = state.buffer.pop(0)
                state.n_buffered -= len(dropped)
                self.metrics.counter("stream.buffer_dropped_events", len(dropped))
            pending = _PendingIngest(
                target_id=target_id,
                state=state,
                watch=watch,
                step=state.step,
                n_events=len(batch),
            )
            adapted = (state.n_cold + state.n_warm) > 0
            if not adapted:
                if state.n_buffered >= self.min_adapt_events:
                    pending.trigger = "warmup"
                    self._mark_due(pending, base_model=None)
            else:
                if state.monitor is not None:
                    pending.observation = self._probe(target_id, state, batch)
                    if pending.observation is not None:
                        self.metrics.counter("stream.drift.observations")
                        if pending.observation.drifted:
                            self.metrics.counter("stream.drift.detections")
                drifted = pending.observation is not None and pending.observation.drifted
                if drifted or state.n_buffered >= self.readapt_budget:
                    pending.trigger = "drift" if drifted else "budget"
                    self._mark_due(pending, base_model=self.model_for(target_id))
        return pending

    def _mark_due(self, pending: _PendingIngest, base_model: RegressionModel | None) -> None:
        """Snapshot everything the due adaptation will consume (lock held)."""
        state = pending.state
        pending.due = True
        pending.base_model = base_model
        pending.warm = base_model is not None
        pending.inputs = (
            state.buffer[0]
            if len(state.buffer) == 1
            else np.concatenate(state.buffer, axis=0)
        )
        pending.n_snapshot = len(state.buffer)
        pending.round_index = state.n_cold + state.n_warm
        pending.seed = self.target_seed(f"{pending.target_id}#round{pending.round_index}")

    def _adapt_pending_stack(self, group: list[_PendingIngest], warm: bool) -> None:
        """Run one stacked group of due (re-)adaptations and commit each.

        Mirrors the accounting of the serial seam
        (:meth:`~repro.runtime.AdaptationService._run_adaptation` +
        :meth:`_commit_adaptation`): one ``service.adaptations`` count per
        success, one latency sample per stack (the jobs shared a wall
        clock).  A per-job :class:`~repro.core.NoConfidentSamplesError`
        becomes ``adapt_failed`` with the buffer kept, exactly as serial;
        any other error propagates.
        """
        if not group:
            return
        warm_epochs = self.warm_epochs if warm else None
        mode = "warm" if warm else "cold"
        pool = self._worker_pool
        if pool is not None:
            stack = [
                (pending.target_id, pending.inputs, pending.seed, pending.base_model)
                for pending in group
            ]
            trios = pool.collect_stacked(pool.submit_stacked(stack, warm_epochs))
        else:
            jobs = [
                StackJob(
                    model=copy.deepcopy(
                        pending.base_model if pending.warm else self._source_model
                    ),
                    inputs=pending.inputs,
                    seed=pending.seed,
                    target_id=pending.target_id,
                )
                for pending in group
            ]
            watch = Stopwatch()
            with use_metrics(self.metrics if self.metrics.enabled else None):
                outcomes = self.strategy.adapt_stacked(jobs, warm_epochs=warm_epochs)
            duration = watch.elapsed()
            trios = []
            for pending, (outcome, error) in zip(group, outcomes):
                if error is not None:
                    trios.append((None, None, error))
                else:
                    report = AdaptationReport.from_outcome(
                        pending.target_id, pending.seed, outcome, len(pending.inputs), duration
                    )
                    trios.append((report, outcome, None))
        observed = False
        for pending, (report, outcome, error) in zip(group, trios):
            if error is not None:
                if isinstance(error, NoConfidentSamplesError):
                    pending.action = "adapt_failed"
                    continue
                raise error
            self.metrics.counter("service.adaptations", mode=mode)
            if not observed:
                # One latency sample per stack (shared wall clock).
                self.metrics.observe(
                    "service.adapt_seconds", report.duration_seconds, mode=mode
                )
                observed = True
            with pending.state.lock:
                self._commit_adaptation(
                    pending.target_id,
                    pending.state,
                    pending.inputs,
                    pending.n_snapshot,
                    pending.warm,
                    pending.round_index,
                    report,
                    outcome,
                )
            pending.action = "warm_adapt" if pending.warm else "cold_adapt"

    def _ingest_finalize(self, pending: _PendingIngest) -> StreamEvent:
        """Record the :class:`StreamEvent` for one decided-and-settled ingest."""
        state = pending.state
        with state.lock:
            observation = pending.observation
            event = StreamEvent(
                target_id=pending.target_id,
                step=pending.step,
                n_events=pending.n_events,
                total_events=state.total_events,
                buffered=state.n_buffered,
                action=pending.action,
                trigger=pending.trigger,
                drift_distance=None if observation is None else float(observation.distance),
                drift_statistic=None if observation is None else float(observation.statistic),
                drifted=observation is not None and observation.drifted,
                duration_seconds=pending.watch.elapsed(),
            )
            state.events.append(event)
        self.metrics.counter("stream.actions", action=event.action)
        self.metrics.observe("stream.ingest_seconds", event.duration_seconds)
        return event

    def _try_adapt_from_buffer(
        self, target_id: str, state: _TargetStream, base_model: RegressionModel | None
    ) -> str:
        """Attempt a (re-)adaptation; returns the resulting event action.

        TASFAR cannot adapt when *no* buffered sample clears the confidence
        threshold (e.g. a window dominated by a sensor glitch).  Rather than
        crashing the stream, such an attempt is recorded as ``adapt_failed``
        and the buffer is kept — the next batches retry once more confident
        data has arrived.  Only that specific condition is absorbed; any
        other error still propagates.
        """
        report = self._adapt_from_buffer(target_id, state, base_model=base_model)
        if report is None:
            return "adapt_failed"
        return "warm_adapt" if base_model is not None else "cold_adapt"

    def _adapt_from_buffer(
        self, target_id: str, state: _TargetStream, base_model: RegressionModel | None
    ) -> AdaptationReport | None:
        """(Re-)adapt from the buffered window, then reset buffer and monitor.

        ``base_model`` selects the mode: an adapted model to warm-start from
        (fine-tuned with the short ``warm_epochs`` schedule), or ``None`` for
        a cold adaptation from the source model.  Returns ``None`` — leaving
        buffer and monitor untouched — when TASFAR aborts because the window
        has no confident samples (the abort happens before any training, so
        retrying on the next ingest is cheap).
        """
        inputs = (
            state.buffer[0]
            if len(state.buffer) == 1
            else np.concatenate(state.buffer, axis=0)
        )
        warm = base_model is not None
        round_index = state.n_cold + state.n_warm
        seed = self.target_seed(f"{target_id}#round{round_index}")
        try:
            report, outcome = self._run_adaptation(
                target_id,
                inputs,
                seed,
                base_model=base_model,
                warm_epochs=self.warm_epochs if warm else None,
            )
        except NoConfidentSamplesError:
            return None
        return self._commit_adaptation(
            target_id, state, inputs, len(state.buffer), warm, round_index, report, outcome
        )

    def _commit_adaptation(
        self,
        target_id: str,
        state: _TargetStream,
        inputs: np.ndarray,
        n_batches: int,
        warm: bool,
        round_index: int,
        report: AdaptationReport,
        outcome: StrategyOutcome,
    ) -> AdaptationReport:
        """Publish one finished (re-)adaptation: report, model, monitor, buffer.

        ``n_batches`` is how many leading buffer entries the adaptation
        consumed — the whole buffer on the serial path, the decision-time
        snapshot on the stacked path (batches ingested concurrently since
        the snapshot must survive for the next round).
        """
        density_map = outcome.density_map
        if density_map is None:
            # The scheme does not estimate a label density map itself (any
            # non-TASFAR strategy).  The drift monitor wants a reference map
            # of "what the freshly adapted model believes", so estimate one
            # by probing the adapted model on the adaptation window.
            density_map = self._reference_density_map(
                target_id, round_index, outcome.target_model, inputs
            )
        report.extra["round"] = round_index
        report.extra["mode"] = "warm" if warm else "cold"
        report.extra["drift_reference"] = density_map is not None
        self._store_result(target_id, report, outcome.target_model)
        if density_map is None:
            # The fine-tune itself succeeded — publish the model rather than
            # throw the paid-for training away (TASFAR's equivalent failure
            # aborts *before* training, which is why it is treated as
            # ``adapt_failed`` instead).  Until a future adaptation yields a
            # reference map, drift detection is unavailable for this target
            # and re-adaptation is budget-triggered only.
            state.monitor = None
        elif state.monitor is None:
            state.monitor = DensityDriftMonitor(
                density_map,
                DriftDetector(self.drift_threshold, self.drift_delta, self.drift_min_batches),
                window_decay=self.window_decay,
                warmup_events=self.drift_warmup_events,
                error_model=self._sigma_estimator.error_model,
            )
        else:
            state.monitor.rebase(density_map)
        del state.buffer[:n_batches]
        state.n_buffered = sum(len(batch) for batch in state.buffer)
        if warm:
            state.n_warm += 1
        else:
            state.n_cold += 1
        if self.snapshot_store is not None:
            # Refresh the spill fallback while we legitimately hold the
            # stream lock: a concurrent eviction that cannot take this lock
            # spills this committed capture instead of skipping the target.
            state.spill_cache = self._encode_stream_state(state)
        return report

    def _reference_density_map(
        self,
        target_id: str,
        round_index: int,
        model: RegressionModel,
        inputs: np.ndarray,
    ) -> LabelDensityMap | None:
        """Estimate a drift-reference density map for a scheme without one.

        Probes the freshly adapted (not yet published) model on the
        adaptation window with seeded MC dropout, keeps the predictions that
        clear the source confidence threshold, and fits the same estimator
        TASFAR uses.  Returns ``None`` when nothing clears the threshold —
        the adapted model is still published, but drift detection stays off
        for the target until a later adaptation yields a reference map.
        """
        predictor = MCDropoutPredictor(
            model,
            n_samples=self.drift_mc_samples,
            seed=stream_seed_sequence(
                self.target_seed(f"{target_id}#map{round_index}"), PROBE_STREAM
            ),
        )
        prediction = predictor.predict(inputs)
        confident = np.flatnonzero(prediction.uncertainty <= self.calibration.threshold)
        if len(confident) == 0:
            return None
        estimator = LabelDistributionEstimator(
            calibrators=self.calibration.calibrators,
            grid_size=self.config.grid_size,
            auto_grid_bins=self.config.auto_grid_bins,
            margin_sigmas=self.config.grid_margin_sigmas,
            error_model=self.config.error_model,
        )
        return estimator.estimate(
            prediction.mean[confident], prediction.uncertainty[confident]
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stream_ids(self) -> list[str]:
        """Target ids that have ingested at least one batch, in first-seen order."""
        with self._streams_lock:
            return list(self._streams)

    def _peek_state(self, target_id: str) -> _TargetStream | None:
        """Read-only state lookup: never registers state for unknown ids."""
        with self._streams_lock:
            return self._streams.get(canonical_target_id(target_id))

    def events_for(self, target_id: str) -> list[StreamEvent]:
        """The per-target event log, oldest first (empty for unknown ids)."""
        state = self._peek_state(target_id)
        if state is None:
            return []
        with state.lock:
            return list(state.events)

    def stream_stats(self, target_id: str) -> dict:
        """Per-target counters: events, adaptations, current buffer depth.

        An id that never ingested anything reports all-zero counters; it is
        not registered as a stream by being asked about.
        """
        state = self._peek_state(target_id)
        if state is None:
            state = _TargetStream()
        with state.lock:
            return {
                "target_id": canonical_target_id(target_id),
                "steps": state.step,
                "total_events": state.total_events,
                "buffered": state.n_buffered,
                "cold_adaptations": state.n_cold,
                "warm_adaptations": state.n_warm,
            }

    def event_table(self) -> list[dict]:
        """All events of all targets as dictionaries (JSON-ready)."""
        rows: list[dict] = []
        for target_id in self.stream_ids():
            rows.extend(event.to_dict() for event in self.events_for(target_id))
        return rows
