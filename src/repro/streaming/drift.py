"""Drift detection for streaming target domains.

Two layers:

* :class:`DriftDetector` — a Page-Hinkley change detector over any scalar
  statistic stream.  It accumulates the deviation of each observation from
  the running mean (minus a tolerance ``delta``) and flags drift when the
  accumulated deviation rises ``threshold`` above its historical minimum —
  the classic sequential test for "the mean of this series has gone up".
* :class:`DensityDriftMonitor` — feeds the detector with the
  total-variation distance between an exponentially decayed
  :class:`~repro.streaming.OnlineDensityMap` of *recent* confident
  predictions and the density map estimated at the last adaptation.  While
  the stream is stationary the recent map hovers near the adapted one and
  the statistic stays flat; when the target's label distribution moves, the
  decayed map follows it and the statistic climbs until Page-Hinkley fires.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.density_map import LabelDensityMap
from ..uncertainty.error_models import ErrorModel
from .online_density import OnlineDensityMap

__all__ = ["DriftDetector", "DriftObservation", "DensityDriftMonitor"]


class DriftDetector:
    """Page-Hinkley test for an upward shift in a scalar statistic stream.

    Parameters
    ----------
    threshold:
        ``lambda``: accumulated deviation above the running minimum that
        counts as drift.  Larger values mean fewer, later, surer alarms.
    delta:
        Tolerance subtracted from every deviation; shifts smaller than
        ``delta`` per observation are never flagged.
    min_samples:
        Number of observations required before the test may fire (the
        running mean is meaningless on the first couple of points).
    """

    def __init__(self, threshold: float = 0.5, delta: float = 0.02, min_samples: int = 3) -> None:
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if delta < 0:
            raise ValueError("delta must be non-negative")
        if min_samples < 1:
            raise ValueError("min_samples must be at least 1")
        self.threshold = float(threshold)
        self.delta = float(delta)
        self.min_samples = int(min_samples)
        self.reset()

    def reset(self) -> "DriftDetector":
        """Forget all observations (called after every re-adaptation)."""
        self.n_observations = 0
        self._mean = 0.0
        self._cumulative = 0.0
        self._cumulative_min = 0.0
        self.drifted = False
        return self

    @property
    def statistic(self) -> float:
        """Current Page-Hinkley statistic (accumulated rise above the minimum)."""
        return self._cumulative - self._cumulative_min

    def update(self, value: float) -> bool:
        """Observe one statistic value; returns whether drift is flagged."""
        value = float(value)
        if not np.isfinite(value):
            raise ValueError(f"drift statistic must be finite, got {value}")
        self.n_observations += 1
        self._mean += (value - self._mean) / self.n_observations
        self._cumulative += value - self._mean - self.delta
        self._cumulative_min = min(self._cumulative_min, self._cumulative)
        self.drifted = (
            self.n_observations >= self.min_samples and self.statistic > self.threshold
        )
        return self.drifted


@dataclass
class DriftObservation:
    """One monitor step: the divergence statistic and the detector verdict."""

    distance: float
    statistic: float
    drifted: bool
    warming_up: bool = False  #: recent window too small; detector not consulted


class DensityDriftMonitor:
    """Watch a stream of confident predictions for label-distribution drift.

    Parameters
    ----------
    reference:
        The density map estimated at the last (re-)adaptation; the monitor
        measures how far the recent stream has moved away from it.
    detector:
        The sequential test fed with the divergence series; a default
        Page-Hinkley detector is built when omitted.
    window_decay:
        Exponential decay of the recent-window online map.  Higher values
        forget faster and react to drift sooner but are noisier.
    warmup_events:
        Events the recent window must accumulate (since the last rebase)
        before observations reach the detector.  A nearly empty window sits
        far from any reference map purely for small-sample reasons; feeding
        those inflated early distances to Page-Hinkley poisons its running
        mean and masks the real drift signal that follows.
    error_model:
        Instance-label distribution family for the recent-window map; must
        match the family the reference map was estimated with, or the
        divergence carries a systematic kernel-shape bias.
    """

    def __init__(
        self,
        reference: LabelDensityMap,
        detector: DriftDetector | None = None,
        window_decay: float = 0.2,
        warmup_events: int = 0,
        error_model: ErrorModel | None = None,
    ) -> None:
        if warmup_events < 0:
            raise ValueError("warmup_events must be non-negative")
        self.detector = detector if detector is not None else DriftDetector()
        self.window_decay = float(window_decay)
        self.warmup_events = int(warmup_events)
        self.error_model = error_model
        self.rebase(reference)

    def rebase(self, reference: LabelDensityMap) -> "DensityDriftMonitor":
        """Adopt a freshly estimated map as the new reference and start over."""
        self.reference = reference.copy().normalize()
        self.recent = OnlineDensityMap.from_map(
            self.reference, decay=self.window_decay, error_model=self.error_model
        )
        self.detector.reset()
        self.last_observation: DriftObservation | None = None
        return self

    def observe(self, centers: np.ndarray, sigmas: np.ndarray) -> DriftObservation:
        """Fold one batch of confident predictions into the recent window.

        Returns the divergence distance, the detector statistic, and whether
        the detector flags drift after this batch.
        """
        self.recent.update(centers, sigmas)
        distance = self.recent.total_variation(self.reference)
        if self.recent.n_events < self.warmup_events:
            self.last_observation = DriftObservation(
                distance=distance,
                statistic=self.detector.statistic,
                drifted=False,
                warming_up=True,
            )
            return self.last_observation
        drifted = self.detector.update(distance)
        self.last_observation = DriftObservation(
            distance=distance, statistic=self.detector.statistic, drifted=drifted
        )
        return self.last_observation
