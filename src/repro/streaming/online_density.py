"""Online label density map with incremental updates and exponential decay.

The batch :class:`~repro.core.density_map.LabelDensityMap` answers "what does
this target's label distribution look like, given everything at once".  A
streaming deployment instead sees the target's data in small batches and needs
the map to (a) stay cheap to refresh and (b) forget stale regimes once the
stream drifts.  :class:`OnlineDensityMap` provides both:

* ``update(centers, sigmas)`` accumulates a batch of instance-label
  distributions exactly like ``LabelDensityMap.add_instances`` — with
  ``decay=0`` the final (normalized) map is the same as a one-shot batch
  estimate over the concatenated stream;
* ``update_labels(labels)`` accumulates hard labels as histogram counts; with
  ``decay=0`` this is **bitwise** equal to ``LabelDensityMap.from_labels`` on
  the concatenated stream, for any chunking and any chunk order, because
  histogram counts are integers that float64 adds exactly;
* ``decay`` in ``(0, 1)`` multiplies the existing mass by ``1 - decay``
  before each update batch, turning the map into an exponentially weighted
  window over the stream — recent batches dominate, which is what the drift
  monitor needs to see a regime change instead of averaging it away.
"""

from __future__ import annotations

import numpy as np

from ..core.density_map import LabelDensityMap
from ..uncertainty.error_models import ErrorModel, GaussianErrorModel

__all__ = ["OnlineDensityMap"]


class OnlineDensityMap:
    """Incrementally maintained label density map over a stream of batches.

    Parameters
    ----------
    edges:
        One strictly increasing array of bin edges per label dimension
        (the grid of the underlying :class:`LabelDensityMap`).
    decay:
        Exponential forgetting factor in ``[0, 1)``.  Before each update
        batch the accumulated (unnormalized) mass is multiplied by
        ``1 - decay``; ``0`` disables forgetting and makes the map a pure
        running accumulation over the whole stream.
    error_model:
        Instance-label distribution family used by :meth:`update`;
        defaults to Gaussian (the paper's choice).
    """

    def __init__(
        self,
        edges: list[np.ndarray],
        decay: float = 0.0,
        error_model: ErrorModel | None = None,
    ) -> None:
        if not 0.0 <= decay < 1.0:
            raise ValueError("decay must be in [0, 1)")
        self._map = LabelDensityMap(edges)
        self.decay = float(decay)
        self.error_model = error_model if error_model is not None else GaussianErrorModel()
        self.n_events = 0
        self.n_updates = 0

    @classmethod
    def from_map(
        cls,
        reference: LabelDensityMap,
        decay: float = 0.0,
        error_model: ErrorModel | None = None,
    ) -> "OnlineDensityMap":
        """An empty online map on the same grid as ``reference``.

        Sharing the grid is what makes :meth:`snapshot` directly comparable
        (via ``mean_absolute_error``) to a map estimated at adaptation time.
        """
        return cls([edge.copy() for edge in reference.edges], decay, error_model)

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def edges(self) -> list[np.ndarray]:
        """Bin edges of the underlying grid."""
        return self._map.edges

    @property
    def shape(self) -> tuple[int, ...]:
        """Grid shape."""
        return self._map.shape

    @property
    def n_dims(self) -> int:
        """Number of label dimensions."""
        return self._map.n_dims

    @property
    def total_mass(self) -> float:
        """Accumulated (decayed, unnormalized) mass currently in the map."""
        return self._map.total_mass

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def _begin_update(self) -> None:
        if self.decay > 0.0:
            self._map.densities *= 1.0 - self.decay

    def update(self, centers: np.ndarray, sigmas: np.ndarray) -> "OnlineDensityMap":
        """Accumulate a batch of instance-label distributions (Eq. 10, online).

        Parameters
        ----------
        centers:
            Predicted labels, shape ``(n, n_dims)``.
        sigmas:
            Instance-label spreads per dimension (broadcast against
            ``centers``).
        """
        centers = np.atleast_2d(np.asarray(centers, dtype=np.float64))
        self._begin_update()
        self._map.add_instances(centers, sigmas, self.error_model)
        self.n_events += len(centers)
        self.n_updates += 1
        return self

    def update_labels(self, labels: np.ndarray) -> "OnlineDensityMap":
        """Accumulate a batch of hard labels as histogram counts."""
        labels = np.atleast_2d(np.asarray(labels, dtype=np.float64))
        if labels.shape[1] != self.n_dims:
            raise ValueError(f"labels must have {self.n_dims} dimensions, got {labels.shape[1]}")
        self._begin_update()
        histogram, _ = np.histogramdd(labels, bins=self._map.edges)
        self._map.densities += histogram
        self.n_events += len(labels)
        self.n_updates += 1
        return self

    def reset(self) -> "OnlineDensityMap":
        """Drop all accumulated mass and counters."""
        self._map.densities = np.zeros(self.shape, dtype=np.float64)
        self.n_events = 0
        self.n_updates = 0
        return self

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def snapshot(self) -> LabelDensityMap:
        """A normalized :class:`LabelDensityMap` copy of the current state."""
        return self._map.copy().normalize()

    def total_variation(self, reference: LabelDensityMap) -> float:
        """Total-variation distance between the snapshot and ``reference``.

        Both maps are compared as normalized distributions on the shared
        grid; the result lies in ``[0, 1]`` (0 = identical, 1 = disjoint
        support), which makes one drift threshold meaningful across tasks
        with very different grid sizes.
        """
        if self.shape != reference.shape:
            raise ValueError(f"maps have different shapes: {self.shape} vs {reference.shape}")
        mine = self.snapshot().densities
        theirs = reference.copy().normalize().densities
        return float(0.5 * np.abs(mine - theirs).sum())

    def mean_absolute_error(self, reference: LabelDensityMap, per_unit: bool = False) -> float:
        """MAE between the normalized snapshot and ``reference``."""
        return self.snapshot().mean_absolute_error(reference, per_unit=per_unit)
