"""Trajectory metrics for the pedestrian-dead-reckoning task.

The paper evaluates PDR with two metrics (Section IV-A):

* **Step error (STE)** — the mean Euclidean distance between the predicted and
  the true per-step displacement vector (Eq. 23);
* **Relative trajectory error (RTE)** — the Euclidean distance between the
  end points of the predicted and true trajectories after aligning their
  starting points (Eq. 24); because step errors can cancel along the path,
  this measures accumulated drift.
"""

from __future__ import annotations

import numpy as np

__all__ = ["step_error", "relative_trajectory_error", "per_trajectory_rte", "trajectory_length"]


def _check_displacements(predictions: np.ndarray, targets: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    predictions = np.asarray(predictions, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    if predictions.shape != targets.shape:
        raise ValueError("prediction and target displacement arrays must have the same shape")
    if predictions.ndim != 2 or predictions.shape[1] != 2:
        raise ValueError("displacements must have shape (n_steps, 2)")
    if len(predictions) == 0:
        raise ValueError("at least one step is required")
    return predictions, targets


def step_error(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Mean per-step Euclidean displacement error (STE, Eq. 23)."""
    predictions, targets = _check_displacements(predictions, targets)
    return float(np.linalg.norm(predictions - targets, axis=1).mean())


def relative_trajectory_error(predictions: np.ndarray, targets: np.ndarray) -> float:
    """End-point error of the reconstructed trajectory (RTE, Eq. 24)."""
    predictions, targets = _check_displacements(predictions, targets)
    return float(np.linalg.norm(predictions.sum(axis=0) - targets.sum(axis=0)))


def trajectory_length(targets: np.ndarray) -> float:
    """Total ground-truth path length (sum of per-step distances)."""
    targets = np.asarray(targets, dtype=np.float64)
    return float(np.linalg.norm(targets, axis=1).sum())


def per_trajectory_rte(
    predictions: np.ndarray,
    targets: np.ndarray,
    trajectory_ids: np.ndarray,
) -> dict[int, float]:
    """RTE computed separately for every trajectory id."""
    predictions, targets = _check_displacements(predictions, targets)
    trajectory_ids = np.asarray(trajectory_ids)
    if len(trajectory_ids) != len(predictions):
        raise ValueError("trajectory_ids must align with the displacement arrays")
    errors: dict[int, float] = {}
    for trajectory in np.unique(trajectory_ids):
        mask = trajectory_ids == trajectory
        errors[int(trajectory)] = relative_trajectory_error(predictions[mask], targets[mask])
    return errors
