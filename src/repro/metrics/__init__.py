"""Evaluation metrics for the TASFAR reproduction."""

from .regression import error_reduction, mae, mse, rmse, rmsle
from .report import format_percent, format_table
from .stats import empirical_cdf, fraction_above_threshold, pearson_correlation
from .trajectory import (
    per_trajectory_rte,
    relative_trajectory_error,
    step_error,
    trajectory_length,
)

__all__ = [
    "empirical_cdf",
    "error_reduction",
    "format_percent",
    "format_table",
    "fraction_above_threshold",
    "mae",
    "mse",
    "pearson_correlation",
    "per_trajectory_rte",
    "relative_trajectory_error",
    "rmse",
    "rmsle",
    "step_error",
    "trajectory_length",
]
