"""Statistical helpers used by the parameter studies."""

from __future__ import annotations

import numpy as np

__all__ = ["pearson_correlation", "empirical_cdf", "fraction_above_threshold"]


def pearson_correlation(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation coefficient between two 1-D arrays.

    Returns 0 when either array is constant (undefined correlation), which is
    the conservative choice for the credibility study of Fig. 11.
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    y = np.asarray(y, dtype=np.float64).ravel()
    if x.shape != y.shape:
        raise ValueError("x and y must have the same length")
    if len(x) < 2:
        raise ValueError("at least two points are required")
    x_std = x.std()
    y_std = y.std()
    if x_std == 0 or y_std == 0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])


def empirical_cdf(values: np.ndarray, grid: np.ndarray) -> np.ndarray:
    """Empirical cumulative distribution of ``values`` evaluated on ``grid``."""
    values = np.sort(np.asarray(values, dtype=np.float64).ravel())
    grid = np.asarray(grid, dtype=np.float64)
    if len(values) == 0:
        raise ValueError("values must not be empty")
    return np.searchsorted(values, grid, side="right") / len(values)


def fraction_above_threshold(values: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
    """Fraction of ``values`` greater than or equal to each threshold.

    This is the statistic plotted in Fig. 17/18: the fraction of trajectories
    whose error reduction exceeds a threshold.
    """
    values = np.asarray(values, dtype=np.float64).ravel()
    thresholds = np.asarray(thresholds, dtype=np.float64)
    if len(values) == 0:
        raise ValueError("values must not be empty")
    return np.array([(values >= threshold).mean() for threshold in thresholds])
