"""Small helpers for rendering experiment results as text tables.

The benchmark harness prints the same rows the paper reports; these helpers
keep that formatting in one place.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_percent"]


def format_percent(value: float, digits: int = 1) -> str:
    """Render a ratio as a percentage string (e.g. ``0.136`` -> ``"13.6%"``)."""
    return f"{100.0 * value:.{digits}f}%"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a simple fixed-width text table."""
    columns = [str(header) for header in headers]
    text_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(column) for column in columns]
    for row in text_rows:
        if len(row) != len(columns):
            raise ValueError("every row must have one cell per header")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(column.ljust(width) for column, width in zip(columns, widths)),
        "  ".join("-" * width for width in widths),
    ]
    for row in text_rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
