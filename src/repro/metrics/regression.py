"""Scalar regression metrics used throughout the evaluation."""

from __future__ import annotations

import numpy as np

__all__ = ["mse", "rmse", "mae", "rmsle", "error_reduction"]


def _align(predictions: np.ndarray, targets: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    predictions = np.asarray(predictions, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    if predictions.ndim == 1:
        predictions = predictions[:, None]
    if targets.ndim == 1:
        targets = targets[:, None]
    if predictions.shape != targets.shape:
        raise ValueError(
            f"prediction shape {predictions.shape} does not match target shape {targets.shape}"
        )
    if len(predictions) == 0:
        raise ValueError("metrics require at least one sample")
    return predictions, targets


def mse(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Mean squared error."""
    predictions, targets = _align(predictions, targets)
    return float(((predictions - targets) ** 2).mean())


def rmse(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Root mean squared error."""
    return float(np.sqrt(mse(predictions, targets)))


def mae(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Mean absolute error."""
    predictions, targets = _align(predictions, targets)
    return float(np.abs(predictions - targets).mean())


def rmsle(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Root mean squared logarithmic error.

    Predictions are clipped at zero before the ``log1p``, as is standard for
    the NYC-taxi evaluation where durations are strictly positive.
    """
    predictions, targets = _align(predictions, targets)
    if np.any(targets < 0):
        raise ValueError("RMSLE requires non-negative targets")
    predictions = np.clip(predictions, 0.0, None)
    log_diff = np.log1p(predictions) - np.log1p(targets)
    return float(np.sqrt((log_diff**2).mean()))


def error_reduction(baseline_error: float, adapted_error: float) -> float:
    """Relative error reduction (a positive value means improvement).

    Defined as ``(baseline - adapted) / baseline``; returns 0 when the
    baseline error is zero.
    """
    if baseline_error == 0:
        return 0.0
    return float((baseline_error - adapted_error) / baseline_error)
