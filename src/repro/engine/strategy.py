"""One ``adapt()`` surface for every adaptation scheme.

The runtime services used to speak TASFAR natively and the experiment
harness used to speak the :class:`~repro.baselines.Adapter` interface, so a
scheme existed in two dialects.  An :class:`AdaptationStrategy` is the one
dialect both now share:

* :meth:`AdaptationStrategy.prepare` runs once, source-side, before
  deployment, and absorbs whatever the scheme ships to the target — TASFAR's
  calibration (``Q_s`` and ``tau``), Datafree's feature statistics, or the
  labelled source dataset for the source-based schemes;
* :meth:`AdaptationStrategy.adapt` runs at the target with unlabeled data
  and returns a :class:`StrategyOutcome` — including warm-start support
  (``base_model`` + ``warm_epochs``), so the streaming service can
  re-adapt *any* scheme from its previously adapted model with a shorter
  schedule, not just TASFAR.

Strategies are looked up by scheme name through :mod:`repro.engine.registry`.
"""

from __future__ import annotations

import dataclasses
import inspect
from dataclasses import dataclass, field

import numpy as np

from ..baselines.base import Adapter
from ..baselines.datafree import DataFree, FeatureStatistics
from ..baselines.registry import make_adapter
from ..core.adapter import AdaptationResult, SourceCalibration, Tasfar
from ..core.config import TasfarConfig
from ..core.density_map import LabelDensityMap
from ..nn.data import ArrayDataset
from ..nn.losses import Loss
from ..nn.models import RegressionModel

__all__ = [
    "SourceResources",
    "StrategyOutcome",
    "StackJob",
    "AdaptationStrategy",
    "TasfarStrategy",
    "BaselineStrategy",
]


@dataclass
class SourceResources:
    """Everything a strategy may consume during source-side preparation.

    All fields are optional; each strategy takes what its setting allows —
    a source-free scheme never touches ``source_data``.
    """

    #: Labelled source training data (source-based schemes only).
    source_data: ArrayDataset | None = None
    #: Held-out labelled source split for calibration-style statistics.
    calibration_data: ArrayDataset | None = None
    #: Pre-fitted TASFAR source calibration, when already available.
    calibration: SourceCalibration | None = None


@dataclass
class StrategyOutcome:
    """Scheme-agnostic result of one strategy adaptation."""

    target_model: RegressionModel
    scheme: str
    losses: list[float] = field(default_factory=list)
    diagnostics: dict = field(default_factory=dict)
    stopped_epoch: int | None = None
    #: Estimated label density map, when the scheme produces one (TASFAR).
    density_map: LabelDensityMap | None = None
    #: The full TASFAR result for schemes that have one; ``None`` otherwise.
    result: AdaptationResult | None = None


@dataclass
class StackJob:
    """One target's slot in a stacked (``train_batching > 1``) adaptation call.

    ``model`` is the start model for this target — the caller's per-target
    copy of the source model, or a previously adapted model for warm starts.
    The scheme clones it before training, exactly as :meth:`adapt` would.
    """

    model: RegressionModel
    inputs: np.ndarray
    seed: int | None = None
    target_id: str | None = None


class AdaptationStrategy:
    """Interface every adaptation scheme exposes to the runtime layers."""

    name: str = "strategy"
    #: whether :meth:`prepare` needs the labelled source dataset
    requires_source_data: bool = False

    @property
    def supports_stacked(self) -> bool:
        """Whether :meth:`adapt_stacked` can batch compatible targets."""
        return False

    def adapt_stacked(
        self, jobs: list[StackJob], *, warm_epochs: int | None = None
    ) -> list[tuple[StrategyOutcome | None, Exception | None]]:
        """Adapt many targets at once, stacking compatible jobs.

        Returns one ``(outcome, error)`` pair per job, in input order, with
        each successful outcome **bit-identical** to what :meth:`adapt`
        would have produced for that target alone.  Jobs that cannot share
        a stack (different dataset lengths, say) are grouped or run serially
        by the scheme — never padded, per the bit-identity argument in
        ``nn/stacked.py``.
        """
        raise NotImplementedError(
            f"scheme {self.name!r} has no stacked adaptation path"
        )

    @property
    def default_epochs(self) -> int | None:
        """The scheme's cold (full-schedule) epoch budget, when known.

        The streaming service derives its default warm-start schedule from
        this (a quarter of the cold budget), so "warm is shorter than cold"
        holds for every scheme, not just TASFAR.  ``None`` means unknown.
        """
        return None

    def prepare(
        self, source_model: RegressionModel, resources: SourceResources
    ) -> "AdaptationStrategy":
        """Source-side preparation (run once, before deployment).

        Returns ``self`` so ``create_strategy(...).prepare(...)`` chains.
        """
        return self

    def adapt(
        self,
        source_model: RegressionModel,
        target_inputs: np.ndarray,
        *,
        seed: int | None = None,
        base_model: RegressionModel | None = None,
        warm_epochs: int | None = None,
    ) -> StrategyOutcome:
        """Adapt to one target domain using unlabeled ``target_inputs``.

        Parameters
        ----------
        source_model:
            The pristine source model; never modified.
        seed:
            Per-target seed; ``None`` keeps the scheme's construction-time
            seeding (what the experiment harness historically did).
        base_model:
            When given, adaptation *warm-starts* from this (already adapted)
            model instead of the source model.
        warm_epochs:
            Shorter fine-tuning schedule for warm starts; ``None`` keeps the
            scheme's full schedule.
        """
        raise NotImplementedError


class TasfarStrategy(AdaptationStrategy):
    """TASFAR behind the strategy surface."""

    name = "tasfar"
    requires_source_data = False

    def __init__(
        self,
        config: TasfarConfig | None = None,
        loss: Loss | None = None,
        calibration: SourceCalibration | None = None,
    ) -> None:
        self.config = config if config is not None else TasfarConfig()
        self.loss = loss
        self.calibration = calibration

    @property
    def default_epochs(self) -> int | None:
        return self.config.adaptation_epochs

    def prepare(self, source_model, resources: SourceResources) -> "TasfarStrategy":
        if resources.calibration is not None:
            self.calibration = resources.calibration
        elif self.calibration is None:
            data = resources.calibration_data or resources.source_data
            if data is None:
                raise ValueError(
                    "TASFAR needs a pre-fitted calibration or labelled source data to fit one"
                )
            self.calibration = Tasfar(self.config, loss=self.loss).calibrate_on_source(
                source_model, data.inputs, data.targets
            )
        return self

    def _config_for(self, warm_epochs: int | None) -> TasfarConfig:
        if warm_epochs is None:
            return self.config
        return dataclasses.replace(
            self.config,
            adaptation_epochs=int(warm_epochs),
            min_adaptation_epochs=min(self.config.min_adaptation_epochs, int(warm_epochs)),
        )

    def adapt(
        self,
        source_model,
        target_inputs,
        *,
        seed=None,
        base_model=None,
        warm_epochs=None,
    ) -> StrategyOutcome:
        if self.calibration is None:
            raise ValueError(
                "TasfarStrategy has no calibration: call prepare() (or construct with "
                "calibration=...) before adapting"
            )
        model = base_model if base_model is not None else source_model
        tasfar = Tasfar(self._config_for(warm_epochs), loss=self.loss)
        result = tasfar.adapt(model, target_inputs, self.calibration, seed=seed)
        return self._outcome_from(result)

    def _outcome_from(self, result: AdaptationResult) -> StrategyOutcome:
        return StrategyOutcome(
            target_model=result.target_model,
            scheme=self.name,
            losses=result.losses,
            stopped_epoch=result.stopped_epoch,
            density_map=result.density_map,
            result=result,
            diagnostics={
                "uncertain_ratio": result.split.uncertain_ratio,
                "n_confident": result.split.n_confident,
                "n_uncertain": result.split.n_uncertain,
                "stopped_epoch": result.stopped_epoch,
            },
        )

    @property
    def supports_stacked(self) -> bool:
        return True

    def adapt_stacked(
        self, jobs: list[StackJob], *, warm_epochs: int | None = None
    ) -> list[tuple[StrategyOutcome | None, Exception | None]]:
        if self.calibration is None:
            raise ValueError(
                "TasfarStrategy has no calibration: call prepare() (or construct with "
                "calibration=...) before adapting"
            )
        tasfar = Tasfar(self._config_for(warm_epochs), loss=self.loss)
        raw = tasfar.adapt_stacked(
            [(job.model, job.inputs, job.seed) for job in jobs], self.calibration
        )
        return [
            (None, error) if error is not None else (self._outcome_from(result), None)
            for result, error in raw
        ]


class BaselineStrategy(AdaptationStrategy):
    """Any :class:`~repro.baselines.Adapter` scheme behind the strategy surface.

    A fresh adapter is constructed per :meth:`adapt` call so per-target seeds
    and warm-start epoch overrides can be injected without mutating shared
    state — which also makes the strategy safe to drive from a worker pool.
    Construction keywords the scheme does not accept (e.g. ``seed`` for the
    no-op ``baseline``) are dropped by signature inspection.
    """

    def __init__(self, scheme: str, **kwargs) -> None:
        prototype = make_adapter(scheme)
        self.name = prototype.name
        self.requires_source_data = bool(prototype.requires_source_data)
        self._scheme = scheme
        self._prototype_cls = type(prototype)
        init = type(prototype).__init__
        if init is object.__init__:
            # No constructor of its own (e.g. SourceOnly): accepts nothing —
            # ``inspect.signature(object.__init__)`` would claim ``**kwargs``.
            self._accepts_any = False
            self._accepted_names: frozenset[str] = frozenset()
        else:
            signature = inspect.signature(init)
            self._accepts_any = any(
                parameter.kind is inspect.Parameter.VAR_KEYWORD
                for parameter in signature.parameters.values()
            )
            self._accepted_names = frozenset(signature.parameters) - {"self"}
        self._kwargs = self._accepted(kwargs)
        self._default_epochs = self._kwargs.get("epochs", getattr(prototype, "epochs", None))
        self._source_data: ArrayDataset | None = None
        self._statistics: FeatureStatistics | None = None

    @property
    def default_epochs(self) -> int | None:
        epochs = self._default_epochs
        return None if epochs is None else int(epochs)

    def _accepted(self, kwargs: dict) -> dict:
        """Keep only the keywords the scheme's constructor understands."""
        if self._accepts_any:
            return dict(kwargs)
        return {key: value for key, value in kwargs.items() if key in self._accepted_names}

    def _build(self, overrides: dict) -> Adapter:
        adapter = make_adapter(self._scheme, **self._accepted({**self._kwargs, **overrides}))
        if isinstance(adapter, DataFree) and self._statistics is not None:
            adapter.statistics = self._statistics
        return adapter

    def prepare(self, source_model, resources: SourceResources) -> "BaselineStrategy":
        if self.requires_source_data:
            if resources.source_data is None:
                raise ValueError(
                    f"scheme {self.name!r} requires labelled source data at preparation time"
                )
            self._source_data = resources.source_data
        prototype = self._build({})
        if isinstance(prototype, DataFree):
            statistics_data = resources.calibration_data or resources.source_data
            if statistics_data is None:
                raise ValueError(
                    "datafree needs source data to fit its feature statistics before deployment"
                )
            prototype.fit_source_statistics(source_model, statistics_data.inputs)
            self._statistics = prototype.statistics
        return self

    def adapt(
        self,
        source_model,
        target_inputs,
        *,
        seed=None,
        base_model=None,
        warm_epochs=None,
    ) -> StrategyOutcome:
        overrides: dict = {}
        if seed is not None:
            overrides["seed"] = int(seed)
        if warm_epochs is not None:
            overrides["epochs"] = int(warm_epochs)
        adapter = self._build(overrides)
        start_model = base_model if base_model is not None else source_model
        result = adapter.adapt(
            start_model,
            target_inputs,
            source_data=self._source_data if self.requires_source_data else None,
        )
        return StrategyOutcome(
            target_model=result.target_model,
            scheme=self.name,
            losses=result.losses,
            diagnostics=dict(result.diagnostics),
        )

    @property
    def supports_stacked(self) -> bool:
        return hasattr(self._prototype_cls, "adapt_many_stacked")

    def adapt_stacked(
        self, jobs: list[StackJob], *, warm_epochs: int | None = None
    ) -> list[tuple[StrategyOutcome | None, Exception | None]]:
        if not self.supports_stacked:
            raise NotImplementedError(
                f"scheme {self.name!r} has no stacked adaptation path"
            )
        pairs = []
        for job in jobs:
            overrides: dict = {}
            if job.seed is not None:
                overrides["seed"] = int(job.seed)
            if warm_epochs is not None:
                overrides["epochs"] = int(warm_epochs)
            pairs.append((self._build(overrides), job.model, job.inputs))
        raw = self._prototype_cls.adapt_many_stacked(
            pairs, self._source_data if self.requires_source_data else None
        )
        return [
            (None, error)
            if error is not None
            else (
                StrategyOutcome(
                    target_model=result.target_model,
                    scheme=self.name,
                    losses=result.losses,
                    diagnostics=dict(result.diagnostics),
                ),
                None,
            )
            for result, error in raw
        ]
