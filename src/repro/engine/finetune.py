"""The one fine-tuning hot path shared by every adaptation scheme.

Before this module existed, the epoch/batch/clip/step loop was written out
five times — in :class:`~repro.core.Tasfar`, each trainable baseline, and
(indirectly) the streaming warm-start path — so every hot-path improvement
had to be applied five times and could drift.  :class:`FineTuneEngine` owns
that loop once.  A scheme contributes only its *batch step* (forward,
scheme-specific loss, backward) as a callable; the engine owns everything
around it:

* mini-batch iteration with **preallocated batch buffers** — per batch the
  engine fills reusable ``(batch_size, ...)`` arrays with ``np.take`` instead
  of allocating fresh fancy-indexing copies, which removes the dominant
  allocation from the training loop while producing bit-identical batches;
* shuffling that consumes the caller's generator exactly like the historical
  per-scheme ``DataLoader`` did (one ``shuffle`` of an identity permutation
  per epoch), so refactored schemes reproduce their pre-engine results
  bit for bit;
* gradient clipping, the optimizer step, per-epoch loss averaging,
  loss-drop early stopping, and the train/eval + dropout-rate bracketing
  that every scheme previously duplicated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..nn.data import ArrayDataset
from ..nn.optim import Optimizer, clip_gradients
from ..nn.parameter import Parameter
from ..obs import active_metrics, now
from .early_stopping import LossDropEarlyStopper

__all__ = ["BatchStep", "FineTuneResult", "FineTuneEngine"]

#: A scheme's per-batch contribution: forward + loss + backward on one batch
#: ``(inputs, targets, weights)``; returns the batch's scalar loss value.
#: The engine has already zeroed the gradients and will clip and step after.
BatchStep = Callable[[np.ndarray, np.ndarray, "np.ndarray | None"], float]


@dataclass
class FineTuneResult:
    """Outcome of one engine run."""

    losses: list[float] = field(default_factory=list)
    stopped_epoch: int | None = None

    @property
    def n_epochs(self) -> int:
        """Number of completed epochs."""
        return len(self.losses)


class _BatchBuffers:
    """Reusable per-batch arrays filled with ``np.take`` instead of reallocated.

    The buffers are private to one engine run, and every batch step consumes
    its batch fully (forward + backward + optimizer step) before the next
    batch is materialized, so reuse is safe.

    Only multi-dimensional arrays get a buffer: for them ``np.take`` into a
    preallocated ``out`` beats an allocating fancy index.  1-D arrays
    (targets, per-sample weights) hit NumPy's specialized 1-D fancy-indexing
    path, which is several times faster than ``take`` with ``out``/``mode``
    at mini-batch sizes — those index directly instead.
    """

    def __init__(self, dataset: ArrayDataset, batch_size: int) -> None:
        def buffer(array: "np.ndarray | None") -> "np.ndarray | None":
            if array is None or array.ndim == 1:
                return None
            return np.empty((batch_size,) + array.shape[1:], dtype=array.dtype)

        self.inputs = buffer(dataset.inputs)
        self.targets = buffer(dataset.targets)
        self.weights = buffer(dataset.weights)

    def fill(
        self, dataset: ArrayDataset, indices: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        # ``mode="clip"`` skips the bounds re-check of the default "raise"
        # mode, which is the difference between ``take``-into-a-buffer being
        # slower or faster than an allocating fancy index at batch sizes.
        # Indices are slices of a shuffled ``arange(len(dataset))``, so they
        # are in bounds by construction and clipping never actually clips.
        n = len(indices)
        if self.inputs is None:
            inputs = dataset.inputs[indices]
        else:
            inputs = self.inputs[:n]
            np.take(dataset.inputs, indices, axis=0, out=inputs, mode="clip")
        if self.targets is None:
            targets = dataset.targets[indices]
        else:
            targets = self.targets[:n]
            np.take(dataset.targets, indices, axis=0, out=targets, mode="clip")
        if dataset.weights is None:
            return inputs, targets, None
        if self.weights is None:
            return inputs, targets, dataset.weights[indices]
        weights = self.weights[:n]
        np.take(dataset.weights, indices, axis=0, out=weights, mode="clip")
        return inputs, targets, weights


class FineTuneEngine:
    """Run the shared epoch/batch/clip/step loop for one adaptation.

    Parameters
    ----------
    epochs:
        Maximum number of epochs.
    batch_size:
        Mini-batch size; the final batch of an epoch may be smaller.
    grad_clip:
        Global gradient-norm clip applied after every batch step
        (``None`` disables clipping).
    disable_dropout:
        Zero the model's dropout rates for the duration of the run (restored
        afterwards).  Every scheme in this repo fine-tunes with dropout off
        — self-distillation noise hurts the compact models — except TASFAR's
        explicit ``dropout_during_adaptation`` ablation.
    stopper:
        Optional :class:`~repro.core.early_stopping.LossDropEarlyStopper`;
        when given, the run stops once the per-epoch loss-drop collapses.
    min_batch_size:
        Batches smaller than this are skipped entirely (DataFree's feature
        statistics need at least two samples).
    shuffle:
        Reshuffle the sample order each epoch from the caller's ``rng``.
    """

    def __init__(
        self,
        epochs: int,
        batch_size: int = 32,
        *,
        grad_clip: float | None = 5.0,
        disable_dropout: bool = True,
        stopper: LossDropEarlyStopper | None = None,
        min_batch_size: int = 1,
        shuffle: bool = True,
    ) -> None:
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if grad_clip is not None and grad_clip <= 0:
            raise ValueError("grad_clip must be positive (or None to disable)")
        if min_batch_size < 1:
            raise ValueError("min_batch_size must be at least 1")
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.grad_clip = grad_clip
        self.disable_dropout = bool(disable_dropout)
        self.stopper = stopper
        self.min_batch_size = int(min_batch_size)
        self.shuffle = bool(shuffle)

    def run(
        self,
        model,
        dataset: ArrayDataset,
        optimizer: Optimizer,
        step: BatchStep,
        *,
        rng: np.random.Generator,
        clip_parameters: Sequence[Parameter] | None = None,
        extra_modules: Sequence = (),
    ) -> FineTuneResult:
        """Fine-tune ``model`` on ``dataset`` by repeatedly invoking ``step``.

        Parameters
        ----------
        model:
            The model being fine-tuned; bracketed in ``train()``/``eval()``
            and (optionally) dropout-disabled for the run.
        dataset:
            Samples, targets and optional per-sample weights.
        optimizer:
            Ready-built optimizer; the engine calls ``zero_grad`` before and
            ``step`` after every batch step.
        step:
            The scheme's batch step (forward + loss + backward).
        rng:
            Generator driving the per-epoch shuffles.  Schemes that draw
            extra randomness inside their batch step (MMD/ADV target batch
            choice, AUGfree perturbations) share this generator, preserving
            the exact draw order of the pre-engine implementations.
        clip_parameters:
            Parameters to clip; defaults to the optimizer's parameter list
            (DataFree clips only the encoder).
        extra_modules:
            Additional modules to bracket in ``train()``/``eval()`` (the
            adversarial baseline's discriminator).
        """
        result = FineTuneResult()
        if self.stopper is not None and self.stopper.losses:
            # LossDropEarlyStopper is stateful (it keeps its loss history and
            # stays tripped once tripped): silently reusing one across runs
            # would cap the second run at one epoch.
            raise ValueError(
                "the early stopper has already observed losses; construct a fresh "
                "stopper (and engine) per run"
            )
        n_samples = len(dataset)
        if n_samples == 0:
            return result
        clip_params = optimizer.parameters if clip_parameters is None else list(clip_parameters)

        saved_rates: list[tuple] = []
        if self.disable_dropout and hasattr(model, "dropout_layers"):
            for layer in model.dropout_layers():
                saved_rates.append((layer, layer.rate))
                layer.rate = 0.0

        buffers = _BatchBuffers(dataset, min(self.batch_size, n_samples))
        identity = np.arange(n_samples)
        order = identity.copy()
        # Hoist the per-batch lookups out of the hot loop.
        grad_clip = self.grad_clip
        fill = buffers.fill
        zero_grad = optimizer.zero_grad
        apply_step = optimizer.step
        # Batch spans are the same every epoch (shuffling permutes the order
        # array, not its length): slice them out — and apply the min_batch
        # filter — once, instead of re-deriving and re-checking them per
        # epoch.  ``n_batches`` is then a constant too.
        spans = [
            slice(start, min(start + self.batch_size, n_samples))
            for start in range(0, n_samples, self.batch_size)
        ]
        spans = [span for span in spans if span.stop - span.start >= self.min_batch_size]
        n_batches = len(spans)
        # Divide, don't multiply by a reciprocal: ``total / n`` is the exact
        # expression the per-scheme loops used, and bit-identity is the bar.
        loss_denominator = max(n_batches, 1)

        # Ambient registry, if a caller installed one with ``use_metrics``;
        # when absent the loop takes zero timing calls.
        metrics = active_metrics()
        if metrics is not None:
            metrics.counter("engine.runs")

        model.train()
        for module in extra_modules:
            module.train()
        try:
            for epoch in range(self.epochs):
                epoch_started = now() if metrics is not None else 0.0
                if self.shuffle:
                    # Reset to the identity permutation before shuffling so the
                    # generator sees exactly the draws the per-scheme
                    # ``DataLoader`` construction used to consume.
                    np.copyto(order, identity)
                    rng.shuffle(order)
                total = 0.0
                for span in spans:
                    inputs, targets, weights = fill(dataset, order[span])
                    zero_grad()
                    total += step(inputs, targets, weights)
                    if grad_clip is not None:
                        clip_gradients(clip_params, grad_clip)
                    apply_step()
                epoch_loss = total / loss_denominator
                result.losses.append(epoch_loss)
                if metrics is not None:
                    metrics.counter("engine.epochs")
                    metrics.counter("engine.batches", n_batches)
                    metrics.observe("engine.epoch_seconds", now() - epoch_started)
                if self.stopper is not None and self.stopper.update(epoch_loss):
                    result.stopped_epoch = epoch + 1
                    break
        finally:
            model.eval()
            for module in extra_modules:
                module.eval()
            for layer, rate in saved_rates:
                layer.rate = rate
        return result
