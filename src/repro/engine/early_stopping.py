"""Early stopping for the unsupervised adaptation training.

The adaptation has no labelled validation set, so the paper stops training
when the *rate* at which the training loss drops collapses (Fig. 13): the
large early drops correspond to fitting the high-credibility pseudo-labels,
and once those are fitted further epochs mostly chase noisy low-credibility
samples.
"""

from __future__ import annotations

import numpy as np

__all__ = ["LossDropEarlyStopper"]


class LossDropEarlyStopper:
    """Stop when the recent loss-drop rate falls below a fraction of the initial rate.

    Parameters
    ----------
    drop_fraction:
        A recent drop rate below ``drop_fraction`` times the initial drop rate
        counts as a "slow" epoch.
    patience:
        Number of consecutive slow epochs required to trigger the stop.
    min_epochs:
        Never stop before this many epochs have completed.
    window:
        Number of epochs used to measure both the initial and the recent drop
        rate.
    """

    def __init__(
        self,
        drop_fraction: float = 0.1,
        patience: int = 3,
        min_epochs: int = 5,
        window: int = 3,
    ) -> None:
        if not 0.0 < drop_fraction < 1.0:
            raise ValueError("drop_fraction must be in (0, 1)")
        if patience < 1 or min_epochs < 1 or window < 1:
            raise ValueError("patience, min_epochs and window must be positive")
        self.drop_fraction = drop_fraction
        self.patience = patience
        self.min_epochs = min_epochs
        self.window = window
        self._losses: list[float] = []
        self._slow_epochs = 0
        self.stopped_epoch: int | None = None

    @property
    def losses(self) -> list[float]:
        """Losses observed so far."""
        return list(self._losses)

    def _drop_rate(self, losses: list[float]) -> float:
        if len(losses) < 2:
            return np.inf
        drops = [max(0.0, earlier - later) for earlier, later in zip(losses[:-1], losses[1:])]
        return float(np.mean(drops))

    def update(self, loss: float) -> bool:
        """Record an epoch loss; return ``True`` when training should stop."""
        if self.stopped_epoch is not None:
            return True
        self._losses.append(float(loss))
        epoch = len(self._losses)
        if epoch < max(self.min_epochs, self.window + 1):
            return False

        initial = self._drop_rate(self._losses[: self.window + 1])
        recent = self._drop_rate(self._losses[-(self.window + 1):])
        if not np.isfinite(initial) or initial <= 0:
            # No meaningful early progress to compare against; keep training
            # until the loss is flat in absolute terms.
            slow = recent <= 1e-12
        else:
            slow = recent < self.drop_fraction * initial

        if slow:
            self._slow_epochs += 1
        else:
            self._slow_epochs = 0
        if self._slow_epochs >= self.patience:
            self.stopped_epoch = epoch
            return True
        return False
