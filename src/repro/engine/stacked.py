"""Cross-target batched training: K fine-tunes through one stacked loop.

:class:`StackedFineTuneEngine` is the training-side sibling of
:class:`~repro.engine.FineTuneEngine`: it runs the same epoch / batch /
clip / step loop, but over a :func:`~repro.nn.stacked.stack_modules` tree
whose tensors carry a leading replica axis.  Each of the K replicas sees

* **its own dataset** — the engine stacks the K equal-length datasets once
  and gathers per-replica batches with one ``np.take`` per tensor;
* **its own shuffle stream** — one generator per replica, consuming exactly
  the draws its serial fine-tune would consume;
* **its own early-stop state** — one optional stopper per replica.  A
  replica that trips its stopper is *masked, not resliced*: it keeps
  flowing through the batched gemms (so shapes never change), but the
  optimizer multiplies its update by 0.0 and its loss history freezes.
  The wasted replica-batches are reported as ``engine.stack_padding_batches``.

The contract is the house correctness bar: every replica's loss history,
stop epoch, and final parameter bytes are **bit-identical** to running the
serial engine K times (see ``tests/engine/test_stacked_engine.py`` and the
scheme-level digests in ``tests/engine/test_scheme_equivalence_stacked.py``).
That is why the engine requires equal dataset lengths instead of padding
ragged datasets: a zero-padded tail batch changes the gemm shape a row is
computed in, the exact ~1 ulp drift ``serve/batching.py`` documents for the
prediction tiler.  Callers group targets by dataset length and fall back to
the serial engine for singleton groups.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..nn.data import ArrayDataset
from ..nn.parameter import Parameter
from ..nn.stacked import stacked_clip_gradients
from ..obs import active_metrics, now
from ..obs.metrics import RATIO_BUCKETS
from .early_stopping import LossDropEarlyStopper
from .finetune import FineTuneResult

__all__ = ["StackedBatchStep", "StackedFineTuneEngine"]

#: A scheme's stacked batch step: forward + per-replica loss + backward on
#: one ``(K, batch, ...)`` batch; returns the ``(K,)`` per-replica loss
#: values.  Gradients are already zeroed; the engine clips and steps after.
StackedBatchStep = Callable[
    [np.ndarray, np.ndarray, "np.ndarray | None"], np.ndarray
]


class StackedFineTuneEngine:
    """Run K fine-tunes as one batched epoch/batch/clip/step loop.

    Constructor parameters mirror :class:`~repro.engine.FineTuneEngine`,
    except ``stoppers`` (one optional stopper per replica, replacing the
    serial engine's single ``stopper``).
    """

    def __init__(
        self,
        epochs: int,
        batch_size: int = 32,
        *,
        grad_clip: float | None = 5.0,
        disable_dropout: bool = True,
        stoppers: Sequence[LossDropEarlyStopper | None] | None = None,
        min_batch_size: int = 1,
        shuffle: bool = True,
    ) -> None:
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if grad_clip is not None and grad_clip <= 0:
            raise ValueError("grad_clip must be positive (or None to disable)")
        if min_batch_size < 1:
            raise ValueError("min_batch_size must be at least 1")
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.grad_clip = grad_clip
        self.disable_dropout = bool(disable_dropout)
        self.stoppers = None if stoppers is None else list(stoppers)
        self.min_batch_size = int(min_batch_size)
        self.shuffle = bool(shuffle)

    def run(
        self,
        model,
        datasets: Sequence[ArrayDataset],
        optimizer,
        step: StackedBatchStep,
        *,
        rngs: Sequence[np.random.Generator],
        clip_parameters: Sequence[Parameter] | None = None,
        extra_modules: Sequence = (),
    ) -> list[FineTuneResult]:
        """Fine-tune the stacked ``model``, one dataset and rng per replica.

        ``model`` is a stacked tree (every parameter ``(K, ...)``) and
        ``optimizer`` a stacked optimizer exposing ``set_replica_mask``.
        Returns one :class:`~repro.engine.FineTuneResult` per replica, in
        input order — each bit-identical to what the serial engine would
        have produced for that replica alone.
        """
        n_replicas = len(datasets)
        if n_replicas == 0:
            raise ValueError("need at least one replica dataset")
        if len(rngs) != n_replicas:
            raise ValueError(
                f"got {n_replicas} datasets but {len(rngs)} shuffle generators"
            )
        stoppers = self.stoppers
        if stoppers is not None and len(stoppers) != n_replicas:
            raise ValueError(
                f"got {n_replicas} datasets but {len(stoppers)} stoppers"
            )
        results = [FineTuneResult() for _ in range(n_replicas)]
        if stoppers is not None:
            for stopper in stoppers:
                if stopper is not None and stopper.losses:
                    raise ValueError(
                        "an early stopper has already observed losses; construct "
                        "fresh stoppers (and engine) per run"
                    )
        n_samples = len(datasets[0])
        for dataset in datasets[1:]:
            if len(dataset) != n_samples:
                raise ValueError(
                    "stacked replicas must share one dataset length "
                    f"(got {sorted({len(d) for d in datasets})}); group targets "
                    "by length before stacking"
                )
        if n_samples == 0:
            return results
        has_weights = datasets[0].weights is not None
        for dataset in datasets[1:]:
            if (dataset.weights is not None) != has_weights:
                raise ValueError(
                    "stacked replicas must agree on whether samples are weighted"
                )
        clip_params = (
            optimizer.parameters if clip_parameters is None else list(clip_parameters)
        )

        # Stack the datasets once: (K, N, ...) / (K, N, label) / (K, N).
        # np.stack is a gather, so replica k's slice is bitwise its dataset.
        stacked_inputs = np.stack([dataset.inputs for dataset in datasets])
        stacked_targets = np.stack([dataset.targets for dataset in datasets])
        stacked_weights = (
            np.stack([dataset.weights for dataset in datasets]) if has_weights else None
        )
        # Flat (K * N, ...) views let one np.take gather all replicas' rows
        # of a batch at once (row k of the index block is offset by k * N).
        flat_inputs = stacked_inputs.reshape((-1,) + stacked_inputs.shape[2:])
        flat_targets = stacked_targets.reshape((-1,) + stacked_targets.shape[2:])
        flat_weights = None if stacked_weights is None else stacked_weights.reshape(-1)

        saved_rates: list[tuple] = []
        if self.disable_dropout and hasattr(model, "dropout_layers"):
            for layer in model.dropout_layers():
                saved_rates.append((layer, layer.rate))
                layer.rate = 0.0

        # Batch spans are fixed for the whole run; tail batches below
        # min_batch_size are skipped (for every replica alike, exactly as
        # the serial engine skips them per target).
        spans = [
            (start, min(start + self.batch_size, n_samples))
            for start in range(0, n_samples, self.batch_size)
        ]
        spans = [(start, stop) for start, stop in spans if stop - start >= self.min_batch_size]
        # One reusable buffer set per distinct batch size (at most two:
        # full batches and the tail), mirroring the serial engine's
        # take-into-preallocated-buffers hot path.
        buffers: dict[int, tuple] = {}
        for start, stop in spans:
            width = stop - start
            if width not in buffers:
                buffers[width] = (
                    np.empty((n_replicas, width) + stacked_inputs.shape[2:]),
                    np.empty((n_replicas, width) + stacked_targets.shape[2:]),
                    np.empty((n_replicas, width)) if has_weights else None,
                )

        identity = np.arange(n_samples)
        orders = np.tile(identity, (n_replicas, 1))  # C-contiguous rows
        row_offsets = (np.arange(n_replicas) * n_samples)[:, None]
        flat_orders = np.empty_like(orders)

        metrics = active_metrics()
        if metrics is not None:
            metrics.counter("engine.runs", n_replicas)
            metrics.counter("engine.stacks")
            metrics.counter("engine.stack_replicas", n_replicas)

        active = [True] * n_replicas
        n_active = n_replicas
        grad_clip = self.grad_clip
        zero_grad = optimizer.zero_grad
        apply_step = optimizer.step

        model.train()
        for module in extra_modules:
            module.train()
        try:
            for epoch in range(self.epochs):
                epoch_started = now() if metrics is not None else 0.0
                if self.shuffle:
                    for k in range(n_replicas):
                        if active[k]:
                            # Each replica's row is a contiguous (N,) view:
                            # resetting to identity then shuffling consumes
                            # exactly the serial engine's per-epoch draws.
                            np.copyto(orders[k], identity)
                            rngs[k].shuffle(orders[k])
                np.add(orders, row_offsets, out=flat_orders)
                totals = np.zeros(n_replicas)
                batches = 0
                for start, stop in spans:
                    flat_idx = flat_orders[:, start:stop]  # (K, b)
                    inputs, targets, weights = buffers[stop - start]
                    np.take(flat_inputs, flat_idx, axis=0, out=inputs, mode="clip")
                    np.take(flat_targets, flat_idx, axis=0, out=targets, mode="clip")
                    if flat_weights is not None:
                        np.take(flat_weights, flat_idx, axis=0, out=weights, mode="clip")
                    zero_grad()
                    totals += step(inputs, targets, weights)
                    if grad_clip is not None:
                        stacked_clip_gradients(clip_params, grad_clip, n_replicas)
                    apply_step()
                    batches += 1
                epoch_losses = totals / max(batches, 1)
                if metrics is not None:
                    # Replicas active this epoch did real work; stopped ones
                    # rode along as padding (fixed gemm shapes).  Mirrors the
                    # serve tiler's tiles / rows / padding-rows accounting.
                    metrics.counter("engine.epochs", n_active)
                    metrics.counter("engine.batches", batches * n_active)
                    metrics.counter("engine.stack_batches", batches)
                    metrics.counter(
                        "engine.stack_padding_batches", batches * (n_replicas - n_active)
                    )
                    metrics.observe(
                        "engine.stack_occupancy",
                        n_active / n_replicas,
                        buckets=RATIO_BUCKETS,
                    )
                    metrics.observe("engine.epoch_seconds", now() - epoch_started)
                mask_changed = False
                for k in range(n_replicas):
                    if not active[k]:
                        continue
                    epoch_loss = float(epoch_losses[k])
                    results[k].losses.append(epoch_loss)
                    stopper = None if stoppers is None else stoppers[k]
                    if stopper is not None and stopper.update(epoch_loss):
                        results[k].stopped_epoch = epoch + 1
                        active[k] = False
                        n_active -= 1
                        mask_changed = True
                if n_active == 0:
                    break
                if mask_changed:
                    optimizer.set_replica_mask(np.array(active, dtype=np.float64))
        finally:
            model.eval()
            for module in extra_modules:
                module.eval()
            for layer, rate in saved_rates:
                layer.rate = rate
        return results
