"""Registry resolving scheme names to :class:`AdaptationStrategy` factories.

The six paper schemes are pre-registered; new schemes plug in with one
:func:`register_strategy` call and immediately work everywhere a scheme name
is accepted — ``AdaptationService(strategy=create_strategy(...))``, the CLI's
``adapt-many --scheme`` / ``stream --scheme``, and the comparison harness.
"""

from __future__ import annotations

import inspect
from typing import Callable

from ..baselines.registry import SCHEME_NAMES
from .strategy import AdaptationStrategy, BaselineStrategy, TasfarStrategy

__all__ = ["STRATEGY_FACTORIES", "register_strategy", "create_strategy", "strategy_names"]


class _BaselineFactory:
    """A picklable factory binding one baseline scheme name.

    A plain callable class instead of a closure so that factories — and
    anything referencing them — can cross a process boundary: the
    process-backed worker pools ship strategies (and, transitively, whatever
    built them) to worker processes by pickle, and closures don't pickle.
    """

    def __init__(self, scheme: str) -> None:
        self.scheme = scheme
        self.__name__ = f"{scheme}_strategy"

    def __call__(self, **kwargs) -> AdaptationStrategy:
        return BaselineStrategy(self.scheme, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"_BaselineFactory({self.scheme!r})"


#: scheme name -> strategy factory; keyword arguments of :func:`create_strategy`
#: are forwarded to the factory.
STRATEGY_FACTORIES: dict[str, Callable[..., AdaptationStrategy]] = {
    name: (TasfarStrategy if name == "tasfar" else _BaselineFactory(name))
    for name in SCHEME_NAMES
}


def register_strategy(name: str, factory: Callable[..., AdaptationStrategy]) -> None:
    """Register (or replace) a strategy factory under ``name``."""
    STRATEGY_FACTORIES[name.lower()] = factory


def strategy_names() -> tuple[str, ...]:
    """All registered scheme names, paper schemes first, extras in add order."""
    return tuple(STRATEGY_FACTORIES)


def create_strategy(name: str, **kwargs) -> AdaptationStrategy:
    """Instantiate a strategy by scheme name.

    ``tasfar`` accepts ``config``/``loss``/``calibration``; the baseline
    schemes accept their adapter constructor keywords (``epochs``, ``lr``,
    ``seed``, ...) — unsupported ones are dropped, so one keyword set can be
    shared across schemes.
    """
    try:
        factory = STRATEGY_FACTORIES[name.lower()]
    except KeyError as exc:
        raise ValueError(
            f"unknown adaptation scheme {name!r}; expected one of {strategy_names()}"
        ) from exc
    parameters = inspect.signature(factory).parameters
    if not any(p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()):
        kwargs = {key: value for key, value in kwargs.items() if key in parameters}
    return factory(**kwargs)
