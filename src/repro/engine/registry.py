"""Registry resolving scheme names to :class:`AdaptationStrategy` factories.

The six paper schemes are pre-registered; new schemes plug in with one
:func:`register_strategy` call and immediately work everywhere a scheme name
is accepted — ``AdaptationService(strategy=create_strategy(...))``, the CLI's
``adapt-many --scheme`` / ``stream --scheme``, and the comparison harness.
"""

from __future__ import annotations

import inspect
from typing import Callable

from ..baselines.registry import SCHEME_NAMES
from .strategy import AdaptationStrategy, BaselineStrategy, TasfarStrategy

__all__ = ["STRATEGY_FACTORIES", "register_strategy", "create_strategy", "strategy_names"]


def _baseline_factory(scheme: str) -> Callable[..., AdaptationStrategy]:
    def factory(**kwargs) -> AdaptationStrategy:
        return BaselineStrategy(scheme, **kwargs)

    factory.__name__ = f"{scheme}_strategy"
    return factory


#: scheme name -> strategy factory; keyword arguments of :func:`create_strategy`
#: are forwarded to the factory.
STRATEGY_FACTORIES: dict[str, Callable[..., AdaptationStrategy]] = {
    name: (TasfarStrategy if name == "tasfar" else _baseline_factory(name))
    for name in SCHEME_NAMES
}


def register_strategy(name: str, factory: Callable[..., AdaptationStrategy]) -> None:
    """Register (or replace) a strategy factory under ``name``."""
    STRATEGY_FACTORIES[name.lower()] = factory


def strategy_names() -> tuple[str, ...]:
    """All registered scheme names, paper schemes first, extras in add order."""
    return tuple(STRATEGY_FACTORIES)


def create_strategy(name: str, **kwargs) -> AdaptationStrategy:
    """Instantiate a strategy by scheme name.

    ``tasfar`` accepts ``config``/``loss``/``calibration``; the baseline
    schemes accept their adapter constructor keywords (``epochs``, ``lr``,
    ``seed``, ...) — unsupported ones are dropped, so one keyword set can be
    shared across schemes.
    """
    try:
        factory = STRATEGY_FACTORIES[name.lower()]
    except KeyError as exc:
        raise ValueError(
            f"unknown adaptation scheme {name!r}; expected one of {strategy_names()}"
        ) from exc
    parameters = inspect.signature(factory).parameters
    if not any(p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()):
        kwargs = {key: value for key, value in kwargs.items() if key in parameters}
    return factory(**kwargs)
