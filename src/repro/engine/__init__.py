"""Strategy engine: the shared fine-tune hot path and the scheme registry.

Layering: ``finetune``/``rng`` sit *below* ``core`` and ``baselines`` (they
implement the training loop those layers call into), while ``strategy`` and
``registry`` sit *above* them (they wrap whole schemes behind one
``AdaptationStrategy`` surface for the runtime services and the CLI).  The
upper half is therefore imported lazily — ``from repro.engine import
TasfarStrategy`` works, but merely importing :mod:`repro.core` (which pulls
in :class:`FineTuneEngine`) does not drag the strategy layer, and the
``core → engine.finetune`` / ``engine.strategy → core`` pair stays acyclic.
"""

from .early_stopping import LossDropEarlyStopper
from .finetune import BatchStep, FineTuneEngine, FineTuneResult
from .stacked import StackedBatchStep, StackedFineTuneEngine
from .rng import (
    ADAPTATION_STREAM,
    CALIBRATION_STREAM,
    PROBE_STREAM,
    stream_generator,
    stream_seed_sequence,
)

__all__ = [
    "ADAPTATION_STREAM",
    "AdaptationStrategy",
    "BatchStep",
    "CALIBRATION_STREAM",
    "BaselineStrategy",
    "FineTuneEngine",
    "FineTuneResult",
    "LossDropEarlyStopper",
    "PROBE_STREAM",
    "SourceResources",
    "StackJob",
    "StackedBatchStep",
    "StackedFineTuneEngine",
    "StrategyOutcome",
    "TasfarStrategy",
    "create_strategy",
    "register_strategy",
    "strategy_names",
    "stream_generator",
    "stream_seed_sequence",
]

#: Names resolved lazily from the strategy layer (PEP 562) to keep the
#: ``core -> engine.finetune`` import light and cycle-free.
_STRATEGY_EXPORTS = {
    "AdaptationStrategy": "strategy",
    "BaselineStrategy": "strategy",
    "SourceResources": "strategy",
    "StackJob": "strategy",
    "StrategyOutcome": "strategy",
    "TasfarStrategy": "strategy",
    "create_strategy": "registry",
    "register_strategy": "registry",
    "strategy_names": "registry",
}


def __getattr__(name: str):
    module_name = _STRATEGY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    return getattr(import_module(f".{module_name}", __name__), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
