"""The repo-wide seeded RNG-stream plan.

Every stochastic stage of the adaptation pipeline draws from its own named
stream derived from one user-facing seed, so stages can never steal draws
from each other: running MC-dropout calibration before or after an
adaptation, or adding a drift probe in between, changes nothing about the
other stages' randomness.  The stream tags below are part of the repo's
reproducibility contract — reordering or renumbering them silently changes
every seeded result, so they live here, in one place, instead of being
scattered as private constants across ``core`` and ``streaming``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "CALIBRATION_STREAM",
    "ADAPTATION_STREAM",
    "PROBE_STREAM",
    "stream_seed_sequence",
    "stream_generator",
]

#: MC-dropout draws of the one-off source-side calibration.
CALIBRATION_STREAM = 0
#: MC-dropout draws + mini-batch shuffling of a target-side adaptation.
ADAPTATION_STREAM = 1
#: MC-dropout draws of streaming drift probes.
PROBE_STREAM = 2


def stream_seed_sequence(seed: int, stream: int, *extra: int) -> np.random.SeedSequence:
    """The :class:`~numpy.random.SeedSequence` of one named stream.

    ``extra`` entries subdivide a stream further (e.g. the per-step probe
    draws of a target's ingest counter).
    """
    return np.random.SeedSequence([int(seed), int(stream), *(int(value) for value in extra)])


def stream_generator(seed: int, stream: int, *extra: int) -> np.random.Generator:
    """A generator seeded on one named stream."""
    return np.random.default_rng(stream_seed_sequence(seed, stream, *extra))
