"""Single source of truth for wall-clock capture and scrubbing.

Every ``duration_seconds`` the stack emits — envelope timings in the
gateway, adaptation reports in the service, worker-pool outcomes — is
captured through :func:`now`/:class:`Stopwatch` here, and every consumer
that needs replay determinism scrubs with :func:`scrub_wall_clock` here.
One module owns both sides, so "which fields are wall clock?" has exactly
one answer.

Wall-clock time is the only nondeterministic value an otherwise
deterministic stack produces.  The scrubber therefore zeroes:

* every ``duration_seconds`` field, at any nesting depth (the historical
  contract, pinned by the sim test-suite);
* inside ``repro.metrics/v1`` snapshots, the data-dependent parts of
  timing histograms and gauges/counters whose names end in ``seconds`` —
  bucket counts and sums vary with wall clock, while the observation
  ``count`` is deterministic and is kept.
"""

from __future__ import annotations

import time

from .metrics import METRICS_SCHEMA

__all__ = ["now", "Stopwatch", "scrub_wall_clock"]


def now() -> float:
    """Monotonic wall-clock reading (seconds); the repo's only timer."""
    return time.perf_counter()


class Stopwatch:
    """Capture one duration: ``Stopwatch()`` then ``.elapsed()``."""

    __slots__ = ("started",)

    def __init__(self) -> None:
        self.started = now()

    def elapsed(self) -> float:
        return now() - self.started


def _scrub_metrics_snapshot(snapshot: dict) -> dict:
    """Zero the wall-clock-dependent parts of a metrics snapshot."""
    scrubbed = dict(snapshot)
    for section in ("counters", "gauges"):
        scrubbed[section] = [
            {**entry, "value": 0.0}
            if entry.get("name", "").endswith("seconds")
            else entry
            for entry in snapshot.get(section, ())
        ]
    scrubbed["histograms"] = [
        {
            **entry,
            "counts": [0] * len(entry.get("counts", ())),
            "sum": 0.0,
        }
        if entry.get("name", "").endswith("seconds")
        else entry
        for entry in snapshot.get("histograms", ())
    ]
    return scrubbed


def scrub_wall_clock(value: object) -> object:
    """Recursively zero every wall-clock-derived field of a wire payload.

    Scrubbing (rather than dropping) keeps the payload shape identical to
    live traffic while making it byte-replayable: ``duration_seconds``
    fields become ``0.0`` at any depth, and embedded ``repro.metrics/v1``
    snapshots get their timing histograms zeroed too.
    """
    if isinstance(value, dict):
        if value.get("schema") == METRICS_SCHEMA:
            return _scrub_metrics_snapshot(value)
        return {
            key: 0.0 if key == "duration_seconds" else scrub_wall_clock(item)
            for key, item in value.items()
        }
    if isinstance(value, list):
        return [scrub_wall_clock(item) for item in value]
    return value
