"""Thread-safe metrics registry: counters, gauges, fixed-bucket histograms.

The registry is the one telemetry surface every layer shares — the
:class:`~repro.runtime.AdaptationService` cache, the gateway's shard
dispatch queues, the micro-batch tiler, the streaming drift monitor and
the :class:`~repro.engine.FineTuneEngine` epoch loop all report here.

Design constraints, in order:

* **Determinism under replay.**  Snapshots are fully sorted, histogram
  bucket boundaries are *fixed at first observation* (never derived from
  the data), and every name that carries wall-clock time ends in
  ``seconds`` so :func:`repro.obs.clock.scrub_wall_clock` can zero the
  nondeterministic parts of a snapshot exactly like it zeroes envelope
  ``duration_seconds`` fields.  With timing scrubbed, two replays of the
  same seeded workload produce byte-identical snapshots.
* **Cheap when disabled.**  Every mutator checks ``enabled`` before
  touching the lock, so a disabled registry costs one attribute read per
  call site — the ``test_bench_obs.py`` bar (<=2% overhead on the serve
  burst) keeps the *enabled* path honest too.
* **Mergeable.**  Process workers cannot share the parent's registry, so
  they run under a fresh worker-local registry (see :func:`use_metrics`)
  and ship its :meth:`~MetricsRegistry.snapshot` back piggybacked on the
  result payload; the parent folds it in with
  :meth:`~MetricsRegistry.merge`.  Counters and histograms add;
  gauges add too (worker deltas are deltas, not absolute readings).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from contextlib import contextmanager

__all__ = [
    "METRICS_SCHEMA",
    "DEFAULT_TIME_BUCKETS",
    "RATIO_BUCKETS",
    "LabeledMetrics",
    "MetricsRegistry",
    "active_metrics",
    "use_metrics",
    "validate_snapshot",
    "to_prometheus",
]

#: Version tag carried by every snapshot; bumped only on breaking layout
#: changes, mirroring the ``repro.serve/v1`` discipline.
METRICS_SCHEMA = "repro.metrics/v1"

#: Default boundaries for timing histograms (seconds).  Fixed so two runs
#: of the same workload agree on the bucket layout byte-for-byte.
DEFAULT_TIME_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

#: Boundaries for ratios in [0, 1] (e.g. tile occupancy).
RATIO_BUCKETS = (0.1, 0.25, 0.5, 0.75, 0.9, 1.0)


def _key(name, labels):
    """Canonical storage key: label values stringified, sorted by key.

    The zero- and one-label cases are the serving hot path (every request
    counts at least one of each), so they skip the generator + sort.
    """
    if not labels:
        return (name, ())
    if len(labels) == 1:
        [(label, value)] = labels.items()
        return (name, ((label, value if type(value) is str else str(value)),))
    return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))


class _Histogram:
    __slots__ = ("bounds", "counts", "total", "count")

    def __init__(self, bounds):
        self.bounds = tuple(float(bound) for bound in bounds)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError("histogram buckets must be strictly increasing")
        self.counts = [0] * (len(self.bounds) + 1)  # trailing +Inf bucket
        self.total = 0.0
        self.count = 0

    def observe(self, value):
        value = float(value)
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1


class MetricsRegistry:
    """Thread-safe counters, gauges, and fixed-bucket histograms."""

    def __init__(self, enabled: bool = True):
        self._lock = threading.Lock()
        self._counters: dict = {}
        self._gauges: dict = {}
        self._histograms: dict = {}
        self.enabled = bool(enabled)

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    # -- mutators ---------------------------------------------------------

    def counter(self, name: str, value: float = 1, **labels) -> None:
        """Add ``value`` (default 1) to the counter ``name``/``labels``."""
        if not self.enabled:
            return
        key = _key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + value

    def counter_many(self, pairs, **labels) -> None:
        """Apply several ``(name, value)`` counter increments in one call.

        Identical in effect to calling :meth:`counter` once per pair, but a
        single lock acquisition — used by the serving hot path, where a
        micro-batched burst settles a handful of counters at once.
        """
        if not self.enabled:
            return
        with self._lock:
            for name, value in pairs:
                key = _key(name, labels)
                self._counters[key] = self._counters.get(key, 0) + value

    def gauge_set(self, name: str, value: float, **labels) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._gauges[_key(name, labels)] = float(value)

    def gauge_add(self, name: str, delta: float, **labels) -> None:
        if not self.enabled:
            return
        key = _key(name, labels)
        with self._lock:
            self._gauges[key] = self._gauges.get(key, 0.0) + float(delta)

    def observe(self, name: str, value: float, buckets=None, **labels) -> None:
        """Record ``value`` in the histogram ``name``/``labels``.

        The first observation pins the bucket boundaries (``buckets`` or
        :data:`DEFAULT_TIME_BUCKETS`); later calls reuse them.
        """
        if not self.enabled:
            return
        key = _key(name, labels)
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = _Histogram(
                    buckets if buckets is not None else DEFAULT_TIME_BUCKETS
                )
            histogram.observe(value)

    def bulk(self, counters=(), gauge_deltas=(), observations=()) -> None:
        """Apply a mixed batch of mutations in one lock acquisition.

        Effect is identical to the equivalent sequence of individual calls:
        ``counters`` and ``gauge_deltas`` take ``(name, value, labels)``
        triples, ``observations`` takes ``(name, value, n, buckets, labels)``
        — ``labels`` a dict or None, ``buckets`` None for the time defaults.
        The serving hot path settles a whole burst's telemetry through one
        ``bulk`` call per registry; on a contended box every extra registry
        call is a potential lock/GIL handoff, which is exactly the overhead
        the ≤2% observability budget is spent on.
        """
        if not self.enabled:
            return
        with self._lock:
            for name, value, labels in counters:
                key = _key(name, labels or {})
                self._counters[key] = self._counters.get(key, 0) + value
            for name, delta, labels in gauge_deltas:
                key = _key(name, labels or {})
                self._gauges[key] = self._gauges.get(key, 0.0) + float(delta)
            for name, value, n, buckets, labels in observations:
                key = _key(name, labels or {})
                histogram = self._histograms.get(key)
                if histogram is None:
                    histogram = self._histograms[key] = _Histogram(
                        buckets if buckets is not None else DEFAULT_TIME_BUCKETS
                    )
                value = float(value)
                histogram.counts[bisect_left(histogram.bounds, value)] += n
                histogram.total += value * n
                histogram.count += n

    def observe_many(self, name: str, values, buckets=None, **labels) -> None:
        """Record several observations into one histogram in one call.

        Identical in effect to calling :meth:`observe` once per value, but a
        single lock acquisition and key computation for the whole batch.
        """
        if not self.enabled or not values:
            return
        key = _key(name, labels)
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = _Histogram(
                    buckets if buckets is not None else DEFAULT_TIME_BUCKETS
                )
            for value in values:
                value = float(value)
                histogram.counts[bisect_left(histogram.bounds, value)] += 1
                histogram.total += value
                histogram.count += 1

    def observe_n(self, name: str, value: float, n: int, buckets=None, **labels) -> None:
        """Record ``n`` identical observations of ``value`` in one call.

        The micro-batcher answers a whole coalesced group with one shared
        wall clock, so per-envelope latency observations within a group are
        ``n`` copies of the same value — folding them into one registry call
        keeps telemetry off the serving hot path.
        """
        if not self.enabled or n <= 0:
            return
        key = _key(name, labels)
        value = float(value)
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = _Histogram(
                    buckets if buckets is not None else DEFAULT_TIME_BUCKETS
                )
            histogram.counts[bisect_left(histogram.bounds, value)] += n
            histogram.total += value * n
            histogram.count += n

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # -- reads ------------------------------------------------------------

    def counter_value(self, name: str, **labels) -> float:
        with self._lock:
            return self._counters.get(_key(name, labels), 0)

    def counter_total(self, name: str) -> float:
        """Sum of one counter across every label set."""
        with self._lock:
            return sum(
                value for (n, _), value in self._counters.items() if n == name
            )

    def gauge_value(self, name: str, default: float = 0.0, **labels) -> float:
        with self._lock:
            return self._gauges.get(_key(name, labels), default)

    def snapshot(self) -> dict:
        """Deterministically-ordered, JSON-ready view of every metric."""
        with self._lock:
            counters = [
                {"name": name, "labels": dict(labels), "value": value}
                for (name, labels), value in sorted(self._counters.items())
            ]
            gauges = [
                {"name": name, "labels": dict(labels), "value": value}
                for (name, labels), value in sorted(self._gauges.items())
            ]
            histograms = [
                {
                    "name": name,
                    "labels": dict(labels),
                    "le": list(histogram.bounds),
                    "counts": list(histogram.counts),
                    "sum": histogram.total,
                    "count": histogram.count,
                }
                for (name, labels), histogram in sorted(self._histograms.items())
            ]
        return {
            "schema": METRICS_SCHEMA,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def merge(self, snapshot: dict | None, extra_labels: dict | None = None) -> None:
        """Fold a :meth:`snapshot` (e.g. a process-worker delta) into this
        registry, optionally stamping ``extra_labels`` onto every entry."""
        if not snapshot or not self.enabled:
            return
        extra = {k: str(v) for k, v in (extra_labels or {}).items()}
        with self._lock:
            for entry in snapshot.get("counters", ()):
                key = _key(entry["name"], {**entry["labels"], **extra})
                self._counters[key] = self._counters.get(key, 0) + entry["value"]
            for entry in snapshot.get("gauges", ()):
                key = _key(entry["name"], {**entry["labels"], **extra})
                self._gauges[key] = self._gauges.get(key, 0.0) + entry["value"]
            for entry in snapshot.get("histograms", ()):
                key = _key(entry["name"], {**entry["labels"], **extra})
                histogram = self._histograms.get(key)
                if histogram is None:
                    histogram = self._histograms[key] = _Histogram(entry["le"])
                if list(histogram.bounds) != list(entry["le"]):
                    raise ValueError(
                        f"histogram bucket mismatch merging {entry['name']!r}"
                    )
                for index, count in enumerate(entry["counts"]):
                    histogram.counts[index] += count
                histogram.total += entry["sum"]
                histogram.count += entry["count"]

    def labeled(self, **labels) -> "LabeledMetrics":
        """A view of this registry with ``labels`` stamped on every write.

        The socket server uses this to tag all of its ``net.*`` metrics
        with the cluster node name without threading the label through
        every call site.  ``None``-valued labels are dropped, so
        ``registry.labeled(node=maybe_node)`` is safe either way.
        """
        return LabeledMetrics(self, {k: v for k, v in labels.items() if v is not None})


class LabeledMetrics:
    """Write-through view of a :class:`MetricsRegistry` with bound labels.

    Only the mutators the transport layer needs are forwarded; reads go to
    the underlying registry directly (label-bound reads would be ambiguous
    about whether the bound labels apply).
    """

    __slots__ = ("registry", "labels")

    def __init__(self, registry: MetricsRegistry, labels: dict) -> None:
        self.registry = registry
        self.labels = dict(labels)

    @property
    def enabled(self) -> bool:
        return self.registry.enabled

    def counter(self, name: str, value: float = 1, **labels) -> None:
        self.registry.counter(name, value, **{**self.labels, **labels})

    def gauge_set(self, name: str, value: float, **labels) -> None:
        self.registry.gauge_set(name, value, **{**self.labels, **labels})

    def gauge_add(self, name: str, delta: float, **labels) -> None:
        self.registry.gauge_add(name, delta, **{**self.labels, **labels})

    def observe(self, name: str, value: float, buckets=None, **labels) -> None:
        self.registry.observe(name, value, buckets, **{**self.labels, **labels})


# -- ambient registry (thread-local) --------------------------------------
#
# The engine reports epoch timing without threading a registry through
# every strategy signature: callers wrap the training call in
# ``use_metrics(registry)`` and the engine picks it up via
# ``active_metrics()``.  Thread-local so shard threads and process
# workers never cross-talk.

_ACTIVE = threading.local()


def active_metrics() -> MetricsRegistry | None:
    """The registry installed by the innermost :func:`use_metrics`, if any."""
    return getattr(_ACTIVE, "registry", None)


@contextmanager
def use_metrics(registry: MetricsRegistry | None):
    """Install ``registry`` as this thread's ambient metrics sink."""
    previous = getattr(_ACTIVE, "registry", None)
    _ACTIVE.registry = registry
    try:
        yield registry
    finally:
        _ACTIVE.registry = previous


# -- snapshot schema + exposition -----------------------------------------


def validate_snapshot(snapshot: object) -> dict:
    """Check ``snapshot`` against the ``repro.metrics/v1`` layout.

    Returns the snapshot on success; raises :class:`ValueError` naming the
    first offending entry otherwise.  Used by the CLI (``repro metrics``)
    and the CI ``obs-smoke`` job.
    """
    if not isinstance(snapshot, dict):
        raise ValueError("metrics snapshot must be a dict")
    if snapshot.get("schema") != METRICS_SCHEMA:
        raise ValueError(
            f"unsupported metrics schema: {snapshot.get('schema')!r} "
            f"(expected {METRICS_SCHEMA!r})"
        )
    for section in ("counters", "gauges", "histograms"):
        entries = snapshot.get(section)
        if not isinstance(entries, list):
            raise ValueError(f"metrics snapshot section {section!r} must be a list")
        for entry in entries:
            if not isinstance(entry, dict) or not isinstance(entry.get("name"), str):
                raise ValueError(f"malformed {section} entry: {entry!r}")
            labels = entry.get("labels")
            if not isinstance(labels, dict) or not all(
                isinstance(k, str) and isinstance(v, str) for k, v in labels.items()
            ):
                raise ValueError(f"malformed labels on {entry['name']!r}: {labels!r}")
            if section == "histograms":
                bounds, counts = entry.get("le"), entry.get("counts")
                if not isinstance(bounds, list) or not isinstance(counts, list):
                    raise ValueError(f"malformed histogram {entry['name']!r}")
                if len(counts) != len(bounds) + 1:
                    raise ValueError(
                        f"histogram {entry['name']!r}: {len(counts)} counts for "
                        f"{len(bounds)} bounds (expected bounds + 1)"
                    )
                if entry.get("count") != sum(counts):
                    raise ValueError(
                        f"histogram {entry['name']!r}: count field disagrees "
                        f"with bucket counts"
                    )
            else:
                if not isinstance(entry.get("value"), (int, float)):
                    raise ValueError(f"non-numeric value on {entry['name']!r}")
                if section == "counters" and entry["value"] < 0:
                    raise ValueError(f"negative counter {entry['name']!r}")
    return snapshot


def _prom_name(name: str) -> str:
    return name.replace(".", "_").replace("-", "_")


def _prom_labels(labels: dict, extra: dict | None = None) -> str:
    merged = {**labels, **(extra or {})}
    if not merged:
        return ""
    body = ",".join(f'{_prom_name(k)}="{v}"' for k, v in sorted(merged.items()))
    return "{" + body + "}"


def to_prometheus(snapshot: dict) -> str:
    """Render a snapshot in the Prometheus text exposition format."""
    lines: list[str] = []
    typed: set[str] = set()

    def type_line(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for entry in snapshot.get("counters", ()):
        name = _prom_name(entry["name"]) + "_total"
        type_line(name, "counter")
        lines.append(f"{name}{_prom_labels(entry['labels'])} {entry['value']}")
    for entry in snapshot.get("gauges", ()):
        name = _prom_name(entry["name"])
        type_line(name, "gauge")
        lines.append(f"{name}{_prom_labels(entry['labels'])} {entry['value']}")
    for entry in snapshot.get("histograms", ()):
        name = _prom_name(entry["name"])
        type_line(name, "histogram")
        cumulative = 0
        for bound, count in zip(entry["le"], entry["counts"]):
            cumulative += count
            labels = _prom_labels(entry["labels"], {"le": repr(bound)})
            lines.append(f"{name}_bucket{labels} {cumulative}")
        labels = _prom_labels(entry["labels"], {"le": "+Inf"})
        lines.append(f"{name}_bucket{labels} {entry['count']}")
        lines.append(f"{name}_sum{_prom_labels(entry['labels'])} {entry['sum']}")
        lines.append(f"{name}_count{_prom_labels(entry['labels'])} {entry['count']}")
    return "\n".join(lines) + "\n"
