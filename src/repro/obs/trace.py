"""Deterministic per-request tracing for the serving gateway.

A :class:`Tracer` attached to a :class:`~repro.serve.Gateway` records one
trace per submitted request, broken into spans mirroring the request's
actual path through the stack::

    request (root)            submit -> envelope returned
      queue                   submit -> shard dispatch picks the task up
      handle                  shard thread working the request
        engine                training time, from the report the engine
                              already stamps (adapt/stream only)

Span **IDs are deterministic**: the root ID is
``sha256("{kind}:{target_id}:{occurrence}")[:16]`` where ``occurrence``
counts prior requests of the same kind for the same target at submit
time, and child IDs are ``sha256("{root}:{name}")[:16]``.  Two replays of
the same seeded workload therefore produce the same tree of IDs — only
the timings differ, and those live in fields ``scrub_wall_clock`` knows
how to zero (``start_seconds``/``duration_seconds``).

Export is JSON lines (:meth:`Tracer.export` / :meth:`Tracer.export_lines`),
one span per line, ready for ``jq`` or any trace viewer ingest.
"""

from __future__ import annotations

import hashlib
import json
import threading

from .clock import now

__all__ = ["Tracer", "RequestTrace", "span_id"]


def span_id(kind: str, target_id: object, occurrence: int) -> str:
    """Deterministic 16-hex-digit root span ID for a request."""
    seed = f"{kind}:{target_id}:{occurrence}"
    return hashlib.sha256(seed.encode("utf-8")).hexdigest()[:16]


def _child_id(root: str, name: str) -> str:
    return hashlib.sha256(f"{root}:{name}".encode("utf-8")).hexdigest()[:16]


class RequestTrace:
    """Lifecycle marker for one in-flight request; created by ``Tracer.begin``."""

    __slots__ = (
        "tracer", "kind", "target_id", "occurrence", "trace_id",
        "_t_submit", "_t_start", "_done",
    )

    def __init__(self, tracer: "Tracer", kind: str, target_id: object, occurrence: int):
        self.tracer = tracer
        self.kind = kind
        self.target_id = target_id
        self.occurrence = occurrence
        self.trace_id = span_id(kind, target_id, occurrence)
        self._t_submit = now()
        self._t_start: float | None = None
        self._done = False

    def mark_dequeued(self) -> None:
        """The shard dispatch picked the task up; ends the queue span."""
        if self._t_start is None:
            self._t_start = now()

    def finish(self, envelope=None) -> None:
        """Close the trace, deriving child spans from what actually ran."""
        if self._done:  # idempotent: sync paths and done-callbacks may race
            return
        self._done = True
        t_end = now()
        ok = bool(getattr(envelope, "ok", False)) if envelope is not None else None
        spans = [
            {
                "trace_id": self.trace_id,
                "span_id": self.trace_id,
                "parent_id": None,
                "name": "request",
                "kind": self.kind,
                "target_id": None if self.target_id is None else str(self.target_id),
                "start_seconds": self._t_submit - self.tracer.t0,
                "duration_seconds": t_end - self._t_submit,
                "ok": ok,
            }
        ]
        if self._t_start is not None:
            spans.append(
                {
                    "trace_id": self.trace_id,
                    "span_id": _child_id(self.trace_id, "queue"),
                    "parent_id": self.trace_id,
                    "name": "queue",
                    "kind": self.kind,
                    "target_id": spans[0]["target_id"],
                    "start_seconds": self._t_submit - self.tracer.t0,
                    "duration_seconds": self._t_start - self._t_submit,
                    "ok": ok,
                }
            )
            spans.append(
                {
                    "trace_id": self.trace_id,
                    "span_id": _child_id(self.trace_id, "handle"),
                    "parent_id": self.trace_id,
                    "name": "handle",
                    "kind": self.kind,
                    "target_id": spans[0]["target_id"],
                    "start_seconds": self._t_start - self.tracer.t0,
                    "duration_seconds": t_end - self._t_start,
                    "ok": ok,
                }
            )
        engine_seconds = _engine_seconds(envelope)
        if engine_seconds is not None:
            parent = spans[-1]
            spans.append(
                {
                    "trace_id": self.trace_id,
                    "span_id": _child_id(self.trace_id, "engine"),
                    "parent_id": parent["span_id"],
                    "name": "engine",
                    "kind": self.kind,
                    "target_id": spans[0]["target_id"],
                    "start_seconds": parent["start_seconds"],
                    "duration_seconds": engine_seconds,
                    "ok": ok,
                }
            )
        self.tracer._record(spans)


def _engine_seconds(envelope) -> float | None:
    """Training time already stamped on the payload, if the kind has one."""
    payload = getattr(envelope, "payload", None)
    if not isinstance(payload, dict):
        return None
    report = payload.get("report")
    if isinstance(report, dict):
        duration = report.get("duration_seconds")
        if isinstance(duration, (int, float)):
            return float(duration)
    event = payload.get("event")
    if isinstance(event, dict):
        duration = event.get("duration_seconds")
        if isinstance(duration, (int, float)):
            return float(duration)
    return None


class Tracer:
    """Collects finished request traces; thread-safe; attach via ``Gateway``."""

    def __init__(self) -> None:
        self.t0 = now()
        self._lock = threading.Lock()
        self._occurrences: dict = {}
        self._spans: list[dict] = []

    def begin(self, kind: str, target_id: object) -> RequestTrace:
        """Open a trace for one request; occurrence counted at submit time."""
        key = (kind, None if target_id is None else str(target_id))
        with self._lock:
            occurrence = self._occurrences.get(key, 0)
            self._occurrences[key] = occurrence + 1
        return RequestTrace(self, kind, target_id, occurrence)

    def _record(self, spans: list[dict]) -> None:
        with self._lock:
            self._spans.extend(spans)

    @property
    def spans(self) -> list[dict]:
        with self._lock:
            return list(self._spans)

    def export_lines(self) -> list[str]:
        """One sorted-keys JSON line per span, in completion order."""
        return [json.dumps(span, sort_keys=True) for span in self.spans]

    def export(self, path) -> int:
        """Write the JSON-lines trace to ``path``; returns the span count."""
        lines = self.export_lines()
        with open(path, "w", encoding="utf-8") as handle:
            for line in lines:
                handle.write(line + "\n")
        return len(lines)
