"""Observability: metrics registry, request tracing, wall-clock discipline.

The telemetry layer every other subsystem reports into:

* :class:`MetricsRegistry` — thread-safe counters / gauges / fixed-bucket
  histograms, snapshot-able (``repro.metrics/v1``), mergeable (process
  workers ship deltas home), Prometheus-exportable;
* :func:`use_metrics` / :func:`active_metrics` — the thread-local ambient
  registry that lets the engine report epoch timing without widening any
  strategy signature;
* :class:`Tracer` — per-request spans (submit → queue → handle → engine)
  with IDs derived deterministically from request identity;
* :mod:`~repro.obs.clock` — the single source of wall-clock capture
  *and* of :func:`scrub_wall_clock`, so replay verification has one
  definition of "what is nondeterministic".

Honesty guarantees live elsewhere but lean on this package: the sim's
``metrics_accounting`` invariant reconciles these counters against the
replay transcript, and ``benchmarks/test_bench_obs.py`` bounds the
enabled-path overhead.
"""

from .clock import Stopwatch, now, scrub_wall_clock
from .metrics import (
    DEFAULT_TIME_BUCKETS,
    METRICS_SCHEMA,
    RATIO_BUCKETS,
    LabeledMetrics,
    MetricsRegistry,
    active_metrics,
    to_prometheus,
    use_metrics,
    validate_snapshot,
)
from .trace import RequestTrace, Tracer, span_id

__all__ = [
    "DEFAULT_TIME_BUCKETS",
    "METRICS_SCHEMA",
    "RATIO_BUCKETS",
    "LabeledMetrics",
    "MetricsRegistry",
    "RequestTrace",
    "Stopwatch",
    "Tracer",
    "active_metrics",
    "now",
    "scrub_wall_clock",
    "span_id",
    "to_prometheus",
    "use_metrics",
    "validate_snapshot",
]
