"""Multi-target adaptation runtime.

TASFAR's deployment story (Section IV of the paper) is one adapted model per
*target domain* — a PDR user, a crowd scene, a city district.  The
:class:`AdaptationService` is the serving-side driver for that story: the
source model and its calibration are registered once, then ``adapt(target_id,
data)`` is called for as many targets as show up, optionally through a
``concurrent.futures`` worker pool (:meth:`AdaptationService.adapt_many`).

Design points:

* **Determinism under parallelism** — every target's adaptation is seeded by
  a stable hash of its id (or an explicit per-call seed), and each worker
  adapts a private deep copy of the pristine source model, so running four
  targets on four threads produces bit-identical results to running them one
  after another.
* **Bounded memory** — adapted models are kept in an LRU cache
  (``max_cached_models``); evicted targets keep their (tiny, JSON-friendly)
  :class:`~repro.runtime.AdaptationReport` and can simply be re-adapted on
  demand since adaptation is deterministic.
* **No target labels** — the service never sees labels, mirroring the
  source-free setting; callers that hold evaluation labels can attach
  metrics to ``report.extra`` themselves.
"""

from __future__ import annotations

import copy
import hashlib
import threading
import warnings
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Iterable, Mapping

import numpy as np

from ..core.adapter import SourceCalibration
from ..core.config import TasfarConfig
from ..engine.strategy import AdaptationStrategy, StackJob, StrategyOutcome, TasfarStrategy
from ..nn.losses import Loss
from ..nn.models import RegressionModel
from ..nn.stacked import StackingError, assert_stackable
from ..nn.trainer import predict_batched
from ..obs import MetricsRegistry, Stopwatch, use_metrics
from .report import AdaptationReport
from .snapshots import (
    SnapshotError,
    SnapshotStore,
    encode_model_weights,
    restore_model_weights,
)
from .workers import EXECUTOR_KINDS, AdaptationWorkerPool

__all__ = ["AdaptationService", "canonical_target_id"]

_THREAD_EXECUTOR_WARNING = (
    "adapt_many is using the thread executor on a CPU-bound adaptation strategy: "
    "the training loop is numpy-small-op and GIL-bound, so jobs>1 gives no "
    "speedup over serial (measured 0.94x at jobs=4). Pass executor='process' "
    "(or attach a pool with use_process_workers) for real parallelism."
)


def canonical_target_id(target_id: object) -> str:
    """The canonical string form of a target identifier.

    Targets arrive as whatever the caller has at hand — ints from a user
    table, strings from a JSON request — and ``7`` and ``"7"`` must name the
    same target everywhere (reports, cached models, seeds, shard placement).
    Every public entry point of the runtime, streaming, and serving layers
    funnels ids through this one helper instead of scattering ``str(...)``
    calls that are easy to miss.
    """
    return target_id if isinstance(target_id, str) else str(target_id)


class AdaptationService:
    """Adapt one registered source model to a fleet of target domains.

    The service is *strategy-generic*: by default it runs TASFAR (built from
    ``calibration``/``config``/``loss``), but any prepared
    :class:`~repro.engine.AdaptationStrategy` — one of the five baselines
    from the registry, or a third-party scheme — serves through exactly the
    same ``adapt`` / ``adapt_many`` / ``predict`` surface.

    Parameters
    ----------
    source_model:
        The trained source model.  The service keeps a pristine deep copy;
        the caller's instance is never mutated.
    calibration:
        The source calibration (``Q_s`` and ``tau``) fitted once before
        deployment via :meth:`repro.core.Tasfar.calibrate_on_source`.
        Required for the default TASFAR strategy (and for the streaming
        subclass's drift probes); optional when an explicit prepared
        ``strategy`` is supplied.
    config:
        TASFAR hyper-parameters shared by every target adaptation.
    loss:
        Task loss for the fine-tuning; defaults to weighted MSE.
    strategy:
        Optional prepared :class:`~repro.engine.AdaptationStrategy` that
        replaces the default TASFAR strategy.
    max_cached_models:
        Upper bound on the number of adapted models kept in memory.  The
        least recently used model is evicted first; its report survives.
    base_seed:
        Mixed into every per-target seed so two services with different base
        seeds adapt the same targets differently (useful for seed studies).
    metrics:
        Optional shared :class:`~repro.obs.MetricsRegistry`; the service
        builds its own (enabled) registry when none is given.  Cache
        hits/misses/evictions, adaptation counts and latency by mode, and
        the engine's epoch timing all land here.
    snapshot_store:
        Optional :class:`~repro.runtime.SnapshotStore` warm tier.  With a
        store attached, every eviction — explicit :meth:`evict` and LRU
        capacity pressure alike — spills the adapted model's exact weights
        and report (plus streaming drift state in the subclass) to disk,
        and the next touch of that target warm-resumes bit-identical state
        from the snapshot instead of falling back to a cold adaptation.
        Corrupt snapshot files are detected by checksum, counted
        (``snapshots.corrupt``), discarded, and degrade to a clean miss.
    """

    def __init__(
        self,
        source_model: RegressionModel,
        calibration: SourceCalibration | None = None,
        config: TasfarConfig | None = None,
        loss: Loss | None = None,
        *,
        strategy: AdaptationStrategy | None = None,
        max_cached_models: int = 8,
        base_seed: int = 0,
        metrics: MetricsRegistry | None = None,
        snapshot_store: SnapshotStore | None = None,
    ) -> None:
        if max_cached_models < 1:
            raise ValueError("max_cached_models must be at least 1")
        self._source_model = copy.deepcopy(source_model)
        self._source_model.eval()
        self.calibration = calibration
        self.config = config if config is not None else TasfarConfig()
        self.loss = loss
        if strategy is None:
            if calibration is None:
                raise ValueError(
                    "provide a calibration for the default TASFAR strategy, or pass an "
                    "explicit prepared strategy="
                )
            strategy = TasfarStrategy(self.config, loss=loss, calibration=calibration)
        self.strategy = strategy
        self.max_cached_models = max_cached_models
        self.base_seed = int(base_seed)
        # Forwards mutate per-call layer caches, so a given model instance
        # must never forward from two threads at once.  Each cache entry
        # pairs the model with its own forward lock: the pair is resolved
        # atomically and the lock dies with the entry on eviction, so two
        # threads holding the same instance always hold the same lock, and
        # the lock table stays as bounded as the model cache.  The shared
        # source model keeps a global forward lock.
        self._models: OrderedDict[str, tuple[RegressionModel, threading.Lock]] = OrderedDict()
        self._reports: dict[str, AdaptationReport] = {}
        self._lock = threading.Lock()
        self._forward_lock = threading.Lock()
        self._worker_pool: AdaptationWorkerPool | None = None
        self._warned_thread_executor = False
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.snapshot_store = snapshot_store

    # ------------------------------------------------------------------
    # Seeding
    # ------------------------------------------------------------------
    def target_seed(self, target_id: str) -> int:
        """Deterministic per-target seed, independent of adaptation order.

        Derived from a stable hash of the target id mixed with ``base_seed``
        (``hash()`` would change between interpreter runs).
        """
        digest = hashlib.sha256(canonical_target_id(target_id).encode("utf-8")).digest()
        return (int.from_bytes(digest[:8], "little") ^ self.base_seed) % (2**63)

    # ------------------------------------------------------------------
    # Worker processes
    # ------------------------------------------------------------------
    @property
    def executor(self) -> str:
        """The executor kind adaptations currently run on (``thread`` or ``process``)."""
        return "process" if self._worker_pool is not None else "thread"

    @property
    def worker_pool(self) -> AdaptationWorkerPool | None:
        """The attached process worker pool, if any."""
        return self._worker_pool

    def use_process_workers(
        self, workers: int, *, start_method: str | None = None
    ) -> AdaptationWorkerPool:
        """Attach a process worker pool; every adaptation then runs on real cores.

        The pristine source model and the prepared strategy are shipped to
        each worker once, at pool start.  All adaptation entry points —
        :meth:`adapt`, :meth:`adapt_many`, and the streaming subclass's
        re-adaptations — route through the pool from here on; results stay
        bit-identical to the in-process path.  Replaces (and closes) any
        previously attached pool.
        """
        pool = AdaptationWorkerPool(
            workers,
            self._source_model,
            self.strategy,
            start_method=start_method,
            metrics=self.metrics,
        )
        old, self._worker_pool = self._worker_pool, pool
        if old is not None:
            old.close()
        return pool

    def restart_workers(self) -> list[int]:
        """Kill and respawn the attached worker processes (no-op on threads).

        Fault-injection hook: models a crashed worker fleet.  Returns the
        PIDs that were killed (empty when no process pool is attached).
        """
        if self._worker_pool is None:
            return []
        return self._worker_pool.restart()

    def close(self) -> None:
        """Release the process worker pool, if one is attached (idempotent)."""
        pool, self._worker_pool = self._worker_pool, None
        if pool is not None:
            pool.close()

    # ------------------------------------------------------------------
    # Adaptation
    # ------------------------------------------------------------------
    def adapt(
        self,
        target_id: str,
        inputs: np.ndarray,
        seed: int | None = None,
    ) -> AdaptationReport:
        """Adapt the source model to one target domain.

        Thread-safe: the heavy work runs on a private copy of the source
        model, only the cache/report bookkeeping is locked.

        Parameters
        ----------
        target_id:
            Identifier of the target; reports and cached models are keyed
            by it.  Re-adapting an existing id replaces both.
        inputs:
            The target's unlabeled adaptation samples.
        seed:
            Optional explicit seed; defaults to :meth:`target_seed`.

        Returns
        -------
        AdaptationReport
            The JSON-serializable summary; the adapted model itself is
            retrievable via :meth:`model_for` while cached.
        """
        target_id = canonical_target_id(target_id)
        effective_seed = self.target_seed(target_id) if seed is None else int(seed)
        report, outcome = self._run_adaptation(target_id, inputs, effective_seed)
        self._store_result(target_id, report, outcome.target_model)
        return report

    def _run_adaptation(
        self,
        target_id: str,
        inputs: np.ndarray,
        seed: int,
        base_model: RegressionModel | None = None,
        warm_epochs: int | None = None,
    ) -> tuple[AdaptationReport, StrategyOutcome]:
        """Run one adaptation and return both the report and the full outcome.

        The streaming subsystem layers on this seam: it needs the
        :class:`~repro.engine.StrategyOutcome` (for the estimated density
        map) and the ability to fine-tune from an already-adapted
        ``base_model`` with a shorter ``warm_epochs`` schedule (warm-start
        re-adaptation), neither of which the public :meth:`adapt` exposes.

        The strategy receives a private deep copy of the model it starts
        from, so concurrent workers never share forward caches.  With a
        process pool attached the same computation runs inside a worker
        process instead (bit-identical — the worker mirrors this method);
        either way the caller blocks until the result is back.
        """
        mode = "warm" if base_model is not None else "cold"
        pool = self._worker_pool
        if pool is not None:
            report, outcome = pool.adapt(target_id, inputs, seed, base_model, warm_epochs)
            self.metrics.counter("service.adaptations", mode=mode)
            self.metrics.observe("service.adapt_seconds", report.duration_seconds, mode=mode)
            return report, outcome
        model = copy.deepcopy(base_model if base_model is not None else self._source_model)
        watch = Stopwatch()
        with use_metrics(self.metrics if self.metrics.enabled else None):
            outcome = self.strategy.adapt(
                model,
                inputs,
                seed=seed,
                base_model=model if base_model is not None else None,
                warm_epochs=warm_epochs,
            )
        duration = watch.elapsed()
        report = AdaptationReport.from_outcome(target_id, seed, outcome, len(inputs), duration)
        self.metrics.counter("service.adaptations", mode=mode)
        self.metrics.observe("service.adapt_seconds", duration, mode=mode)
        return report, outcome

    def _store_result(
        self, target_id: str, report: AdaptationReport, model: RegressionModel
    ) -> None:
        """Record a finished adaptation in the report table and the LRU cache."""
        with self._lock:
            self._reports[target_id] = report
            self._models[target_id] = (model, threading.Lock())
            self._models.move_to_end(target_id)
            spilled = self._evict_over_capacity_locked()
        self._spill_snapshots(spilled)

    def _evict_over_capacity_locked(self) -> list[tuple[str, RegressionModel, AdaptationReport]]:
        """Pop LRU entries past capacity; return what must spill to the snapshot tier.

        Must run under ``self._lock``.  The actual disk writes happen later,
        outside the lock: spilling streaming drift state takes per-stream
        locks whose ordering forbids holding the cache lock, and disk IO
        under the cache lock would stall every concurrent lookup anyway.
        """
        spilled: list[tuple[str, RegressionModel, AdaptationReport]] = []
        while len(self._models) > self.max_cached_models:
            evicted_id, (evicted_model, _lock) = self._models.popitem(last=False)
            self.metrics.counter("service.cache.evictions", reason="capacity")
            report = self._reports.get(evicted_id)
            if self.snapshot_store is not None and report is not None:
                spilled.append((evicted_id, evicted_model, report))
        return spilled

    # ------------------------------------------------------------------
    # Snapshot tier (spill on evict, resume on next touch)
    # ------------------------------------------------------------------
    def _snapshot_stream_state(self, target_id: str) -> dict | None:
        """Streaming drift state for a spilling target (batch service: none).

        Overridden by :class:`~repro.streaming.StreamingAdaptationService`
        to capture the target's drift monitor and round counters.
        """
        return None

    def _spill_snapshots(
        self, entries: list[tuple[str, RegressionModel, AdaptationReport]]
    ) -> None:
        """Write evicted ``(id, model, report)`` tuples to the snapshot tier.

        Runs without any service lock held: each model left the cache
        atomically with its report, so the tuple is self-consistent, and
        concurrent spills of different targets write disjoint files (racing
        spills of the *same* target each write a complete document and the
        last atomic rename wins).
        """
        store = self.snapshot_store
        if store is None:
            return
        for target_id, model, report in entries:
            store.save(
                target_id,
                {
                    "report": report.to_dict(),
                    "weights": encode_model_weights(model),
                    "stream": self._snapshot_stream_state(target_id),
                },
            )
            self.metrics.counter("snapshots.spilled")

    def _resume_from_snapshot(
        self, target_id: str
    ) -> tuple[RegressionModel, threading.Lock] | None:
        """Rebuild a target's adapted model from its snapshot, if one exists.

        Returns the freshly cached ``(model, forward_lock)`` entry, or
        ``None`` for a clean miss.  A snapshot that exists but cannot be
        trusted (checksum, schema, structure) is counted as
        ``snapshots.corrupt``, deleted — so it is detected exactly once and
        the accounting invariant ``resumed + corrupt <= spilled`` holds —
        and treated as a miss; the caller then cold-adapts as before.
        """
        store = self.snapshot_store
        if store is None:
            return None
        watch = Stopwatch()
        model = copy.deepcopy(self._source_model)
        try:
            payload = store.load(target_id)
            if payload is None:
                return None
            restore_model_weights(model, payload.get("weights"))
            report = AdaptationReport.from_dict(payload["report"])
        except SnapshotError:
            store.discard(target_id)
            self.metrics.counter("snapshots.corrupt")
            return None
        except (KeyError, TypeError, ValueError):
            store.discard(target_id)
            self.metrics.counter("snapshots.corrupt")
            return None
        model.eval()
        entry = (model, threading.Lock())
        with self._lock:
            current = self._models.get(target_id)
            if current is not None:
                # A concurrent resume (or re-adaptation) won the race while
                # we were reading disk; keep the cached entry authoritative.
                self._models.move_to_end(target_id)
                return current
            self._reports[target_id] = report
            self._models[target_id] = entry
            self._models.move_to_end(target_id)
            spilled = self._evict_over_capacity_locked()
        self._spill_snapshots(spilled)
        self.metrics.counter("snapshots.resumed")
        self.metrics.observe("snapshots.resume_seconds", watch.elapsed())
        return entry

    def check_train_batching(self, train_batching: int) -> int:
        """Validate a ``train_batching`` knob against the scheme and model.

        Stacked training is an opt-in with hard requirements — the scheme
        must expose a stacked adaptation path and the model tree must be
        stackable — so an incompatible combination is a loud ``ValueError``
        at the entry point, never a silent serial fallback.
        """
        train_batching = int(train_batching)
        if train_batching < 1:
            raise ValueError("train_batching must be at least 1")
        if train_batching == 1:
            return 1
        if not getattr(self.strategy, "supports_stacked", False):
            raise ValueError(
                f"train_batching={train_batching} is not supported by scheme "
                f"{self.strategy.name!r}: it has no stacked adaptation path; "
                "use train_batching=1 for this scheme"
            )
        try:
            assert_stackable(self._source_model)
        except StackingError as exc:
            raise ValueError(
                f"train_batching={train_batching} cannot stack this model: {exc}"
            ) from exc
        return train_batching

    def adapt_stack(
        self,
        entries: list[tuple[str, np.ndarray, int | None]],
        *,
        warm_epochs: int | None = None,
    ) -> list[tuple[AdaptationReport | None, Exception | None]]:
        """Adapt one ``train_batching`` group of targets via the stacked path.

        ``entries`` are ``(target_id, inputs, seed)`` with ``seed=None``
        meaning the usual :meth:`target_seed`.  Each job gets a private deep
        copy of the source model (schemes may forward through their start
        model), so results are bit-identical to per-target :meth:`adapt`
        calls.  Runs on the attached process worker pool when one is present
        (mirroring how serial :meth:`adapt` routes), in-process otherwise.
        Successes are stored; per-job failures are returned as data in input
        order for the caller's error policy (the serving gateway answers
        them as error envelopes, :meth:`adapt_many` raises the first).
        """
        resolved = [
            (
                canonical_target_id(tid),
                data,
                self.target_seed(tid) if seed is None else int(seed),
            )
            for tid, data, seed in entries
        ]
        pool = self._worker_pool
        if pool is not None:
            trios = pool.collect_stacked(
                pool.submit_stacked(
                    [(tid, data, seed, None) for tid, data, seed in resolved],
                    warm_epochs,
                )
            )
        else:
            jobs = [
                StackJob(
                    model=copy.deepcopy(self._source_model),
                    inputs=data,
                    seed=seed,
                    target_id=tid,
                )
                for tid, data, seed in resolved
            ]
            watch = Stopwatch()
            with use_metrics(self.metrics if self.metrics.enabled else None):
                outcomes = self.strategy.adapt_stacked(jobs, warm_epochs=warm_epochs)
            duration = watch.elapsed()
            trios = []
            for (tid, data, seed), (outcome, error) in zip(resolved, outcomes):
                if error is not None:
                    trios.append((None, None, error))
                else:
                    report = AdaptationReport.from_outcome(
                        tid, seed, outcome, len(data), duration
                    )
                    trios.append((report, outcome, None))
        results: list[tuple[AdaptationReport | None, Exception | None]] = []
        observed = False
        for (tid, _data, _seed), (report, outcome, error) in zip(resolved, trios):
            if error is not None:
                results.append((None, error))
                continue
            self.metrics.counter("service.adaptations", mode="cold")
            if not observed:
                # One latency sample per stack: the jobs shared one wall
                # clock, and K copies of it would skew the histogram.
                self.metrics.observe(
                    "service.adapt_seconds", report.duration_seconds, mode="cold"
                )
                observed = True
            self._store_result(tid, report, outcome.target_model)
            results.append((report, None))
        return results

    def _adapt_chunks_process(
        self, chunks: list[list[tuple[str, np.ndarray]]], jobs: int
    ) -> dict[str, AdaptationReport]:
        """Fan ``train_batching`` stacks out over worker processes.

        Batching composes with process sharding: each chunk is one worker
        task running a whole stacked fine-tune; chunks spread across the
        pool's real cores.  Bookkeeping happens in the parent, in input
        order, as everywhere else.
        """
        pool = self._worker_pool
        ephemeral = pool is None
        if ephemeral:
            pool = AdaptationWorkerPool(
                jobs, self._source_model, self.strategy, metrics=self.metrics
            )
        reports: dict[str, AdaptationReport] = {}
        try:
            submitted = [
                (
                    chunk,
                    pool.submit_stacked(
                        [(tid, data, self.target_seed(tid), None) for tid, data in chunk]
                    ),
                )
                for chunk in chunks
            ]
            for chunk, future in submitted:
                observed = False
                for (tid, _data), (report, outcome, error) in zip(
                    chunk, pool.collect_stacked(future)
                ):
                    if error is not None:
                        raise error
                    self.metrics.counter("service.adaptations", mode="cold")
                    if not observed:
                        # One latency sample per stack (shared wall clock).
                        self.metrics.observe(
                            "service.adapt_seconds", report.duration_seconds, mode="cold"
                        )
                        observed = True
                    self._store_result(tid, report, outcome.target_model)
                    reports[tid] = report
        finally:
            if ephemeral:
                pool.close()
        return reports

    def adapt_many(
        self,
        targets: Mapping[str, np.ndarray] | Iterable[tuple[str, np.ndarray]],
        jobs: int = 1,
        executor: str | None = None,
        train_batching: int = 1,
    ) -> dict[str, AdaptationReport]:
        """Adapt a batch of targets, optionally on a worker pool.

        Parameters
        ----------
        targets:
            ``{target_id: inputs}`` mapping or an iterable of pairs.
        jobs:
            Worker count.  ``1`` runs serially in the calling thread; any
            value produces identical numbers because every target is
            independently seeded.
        executor:
            ``"process"`` runs workers on real cores (this is where jobs>1
            actually goes faster); ``"thread"`` keeps the old GIL-bound
            thread pool and warns once, because the adaptation loop is
            numpy-small-op CPU-bound work that threads cannot overlap.
            ``None`` (the default) picks ``"process"`` when a pool is
            already attached via :meth:`use_process_workers`, else
            ``"thread"``.
        train_batching:
            Stack size for cross-target batched training.  ``K > 1`` groups
            up to K targets into one stacked fine-tune *inside* each worker
            (composing with ``executor="process"`` across workers), with
            results bit-identical to serial per-target adaptation.  Raises
            :class:`ValueError` when the scheme or model cannot stack — no
            silent fallback.

        Returns
        -------
        dict
            Reports keyed by target id, in the input order.
        """
        items = [
            (canonical_target_id(tid), data)
            for tid, data in (
                targets.items() if isinstance(targets, Mapping) else targets
            )
        ]
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        if executor is not None and executor not in EXECUTOR_KINDS:
            raise ValueError(f"executor must be one of {EXECUTOR_KINDS}, got {executor!r}")
        train_batching = self.check_train_batching(train_batching)
        if executor is None:
            executor = "process" if self._worker_pool is not None else "thread"
        if train_batching > 1 and len(items) > 1:
            chunks = [
                items[start : start + train_batching]
                for start in range(0, len(items), train_batching)
            ]
            if executor == "process" and (jobs > 1 or self._worker_pool is not None):
                return self._adapt_chunks_process(chunks, jobs)
            reports: dict[str, AdaptationReport] = {}
            for chunk in chunks:
                reports.update(self._collect_stack_chunk(chunk))
            return reports
        if jobs == 1 or len(items) <= 1:
            return {tid: self.adapt(tid, data) for tid, data in items}
        if executor == "process":
            return self._adapt_many_process(items, jobs)
        if not self._warned_thread_executor:
            self._warned_thread_executor = True
            warnings.warn(_THREAD_EXECUTOR_WARNING, RuntimeWarning, stacklevel=2)
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            futures = [pool.submit(self.adapt, tid, data) for tid, data in items]
            return {tid: future.result() for (tid, _), future in zip(items, futures)}

    def _collect_stack_chunk(
        self, chunk: list[tuple[str, np.ndarray]]
    ) -> dict[str, AdaptationReport]:
        """In-process stack adaptation with `adapt_many`'s raise-on-error policy."""
        reports: dict[str, AdaptationReport] = {}
        entries = [(tid, data, None) for tid, data in chunk]
        for (tid, _), (report, error) in zip(chunk, self.adapt_stack(entries)):
            if error is not None:
                raise error
            reports[tid] = report
        return reports

    def _adapt_many_process(
        self, items: list[tuple[str, np.ndarray]], jobs: int
    ) -> dict[str, AdaptationReport]:
        """Fan a batch out over worker processes and fold results back in order.

        Uses the attached pool when present (weights already shipped), else
        stands up an ephemeral one sized ``jobs`` for this call.  All
        bookkeeping — the LRU model cache, the report table — happens in the
        parent, in input order, exactly as the serial path would do it.
        """
        pool = self._worker_pool
        ephemeral = pool is None
        if ephemeral:
            pool = AdaptationWorkerPool(
                jobs, self._source_model, self.strategy, metrics=self.metrics
            )
        try:
            submitted = []
            for tid, data in items:
                target_id = canonical_target_id(tid)
                seed = self.target_seed(target_id)
                submitted.append((target_id, pool.submit(target_id, data, seed)))
            reports: dict[str, AdaptationReport] = {}
            for target_id, future in submitted:
                report, outcome = pool.collect(future)
                self.metrics.counter("service.adaptations", mode="cold")
                self.metrics.observe(
                    "service.adapt_seconds", report.duration_seconds, mode="cold"
                )
                self._store_result(target_id, report, outcome.target_model)
                reports[target_id] = report
            return reports
        finally:
            if ephemeral:
                pool.close()

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _missing_model_error(self, target_id: str) -> KeyError:
        """A ``KeyError`` explaining *why* no model is cached for ``target_id``.

        Distinguishes the two very different situations a bare ``None`` used
        to conflate: the target was never adapted at all, versus it was
        adapted but its model fell out of the LRU cache.
        """
        with self._lock:
            adapted = target_id in self._reports
        if adapted:
            return KeyError(
                f"target {target_id!r} was adapted but its model was evicted from the "
                f"LRU cache (max_cached_models={self.max_cached_models}); re-adapt it "
                "(adaptation is deterministic) or raise max_cached_models"
            )
        return KeyError(
            f"target {target_id!r} was never adapted by this service; call "
            f"adapt({target_id!r}, inputs) first"
        )

    def _model_and_lock(
        self, target_id: str
    ) -> tuple[RegressionModel, threading.Lock] | None:
        """Atomically resolve a cached model together with its forward lock.

        On a cache miss with a snapshot tier attached, the target's model is
        warm-resumed from disk (bit-identical weights, original report)
        before the miss is conceded — this one chokepoint serves
        :meth:`model_for`, :meth:`predict`, the gateway micro-batcher, and
        the streaming probes, so every touch of an evicted target resumes.
        """
        target_id = canonical_target_id(target_id)
        with self._lock:
            entry = self._models.get(target_id)
            if entry is not None:
                self._models.move_to_end(target_id)
                return entry
        if self.snapshot_store is None:
            return None
        return self._resume_from_snapshot(target_id)

    def model_for(self, target_id: str, required: bool = False) -> RegressionModel | None:
        """The cached adapted model for ``target_id`` (``None`` if evicted).

        With ``required=True`` a missing model raises a :class:`KeyError`
        whose message says whether the target was never adapted or merely
        evicted from the LRU cache, instead of handing back ``None``.

        The returned model is the cached instance, not a copy; its layers
        cache per-forward state, so don't run it from several threads at
        once (deep-copy it per worker, or go through :meth:`predict`).
        """
        entry = self._model_and_lock(target_id)
        if entry is None:
            if required:
                raise self._missing_model_error(canonical_target_id(target_id))
            return None
        return entry[0]

    def _predict_entry(
        self, target_id: str, strict: bool = False, count_metrics: bool = True
    ) -> tuple[RegressionModel, threading.Lock, bool]:
        """Resolve the model a prediction for ``target_id`` must run on.

        Returns ``(model, forward_lock, fallback)`` where ``fallback`` says
        the shared source model was substituted for a missing adapted model.
        This is the seam the serving gateway's micro-batcher shares with
        :meth:`predict`: both resolve requests to the same model instances,
        so coalesced and per-request predictions are computed on identical
        parameters.

        ``count_metrics=False`` skips the per-call hit/miss counters; the
        micro-batcher uses it to tally a whole burst locally and issue one
        aggregated counter per outcome instead of one per request.
        """
        entry = self._model_and_lock(target_id)
        if entry is None:
            if strict:
                if count_metrics:
                    self.metrics.counter("service.cache.strict_misses")
                raise self._missing_model_error(canonical_target_id(target_id))
            if count_metrics:
                self.metrics.counter("service.cache.misses")
            return self._source_model, self._forward_lock, True
        if count_metrics:
            self.metrics.counter("service.cache.hits")
        model, forward_lock = entry
        return model, forward_lock, False

    def predict(
        self,
        target_id: str,
        inputs: np.ndarray,
        batch_size: int = 256,
        strict: bool = False,
    ) -> np.ndarray:
        """Predict with the target's adapted model (source model if unknown).

        Targets that were never adapted — or whose model was evicted — fall
        back to the source model, which is exactly the pre-adaptation
        behaviour and therefore always a safe default.  When silent fallback
        is not acceptable, pass ``strict=True``: a missing model then raises
        a :class:`KeyError` distinguishing "never adapted" from "evicted
        from the LRU cache".

        Thread-safe: forwards are serialized under a lock because the layers
        cache per-call state (a concurrent forward on a shared model would
        corrupt it).  For parallel serving throughput, go through the
        :class:`~repro.serve.Gateway` (which micro-batches across targets)
        or take :meth:`model_for` copies into per-worker hands.
        """
        if batch_size < 1:
            raise ValueError(f"batch_size must be at least 1, got {batch_size}")
        model, forward_lock, _ = self._predict_entry(target_id, strict=strict)
        with forward_lock:
            return predict_batched(model, inputs, batch_size)

    def evict(self, target_id: str | None = None) -> list[str]:
        """Drop cached adapted models; reports survive.

        ``target_id=None`` evicts every cached model (memory pressure, or a
        fault-injection harness forcing source fallbacks and cold
        re-adaptations); a specific id evicts just that target.  Returns the
        ids actually evicted.  Eviction is exactly what LRU capacity
        pressure does, made explicit: adaptation is deterministic, so an
        evicted target can always be re-adapted to the same bits.

        With a snapshot store attached, every evicted model spills to the
        warm tier first, so the next touch resumes instead of cold-adapting.
        """
        spilled: list[tuple[str, RegressionModel, AdaptationReport]] = []
        with self._lock:
            if target_id is None:
                popped = [(tid, entry[0]) for tid, entry in self._models.items()]
                self._models.clear()
            else:
                target_id = canonical_target_id(target_id)
                entry = self._models.pop(target_id, None)
                popped = [(target_id, entry[0])] if entry is not None else []
            evicted = [tid for tid, _model in popped]
            if self.snapshot_store is not None:
                for tid, model in popped:
                    report = self._reports.get(tid)
                    if report is not None:
                        spilled.append((tid, model, report))
        if evicted:
            self.metrics.counter("service.cache.evictions", len(evicted), reason="explicit")
        self._spill_snapshots(spilled)
        return evicted

    def report_for(self, target_id: str) -> AdaptationReport | None:
        """The stored report for ``target_id`` (survives model eviction)."""
        with self._lock:
            return self._reports.get(canonical_target_id(target_id))

    def reports(self) -> dict[str, AdaptationReport]:
        """All reports, keyed by target id."""
        with self._lock:
            return dict(self._reports)

    @property
    def cached_targets(self) -> list[str]:
        """Ids whose adapted models are currently cached (LRU order, oldest first)."""
        with self._lock:
            return list(self._models)

    @property
    def n_adapted(self) -> int:
        """Number of targets adapted so far (reports, not cached models)."""
        with self._lock:
            return len(self._reports)
