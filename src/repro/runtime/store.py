"""Disk-backed store for experiment results.

``run-all`` used to be all-or-nothing: a crash in experiment 17 of 20 threw
away the first 16.  The :class:`ResultStore` persists every
:class:`~repro.experiments.base.ExperimentResult` as one JSON file keyed by
``(experiment_id, scale, seed)`` so a re-run with ``--resume`` loads finished
experiments instead of recomputing them.

Layout on disk::

    <root>/<scale>/seed<seed>/<experiment_id>.json

Writes are atomic (write to a temp file, then ``os.replace``) so a killed
process never leaves a half-written result that would poison a resume.  The
temp file name is unique per writer (pid + uuid, created ``O_EXCL`` in the
destination directory), so concurrent ``run-all --jobs`` workers racing on
the *same* key can never interleave into one temp file — the last
``os.replace`` wins with a complete JSON document either way.
"""

from __future__ import annotations

import json
import os
import uuid
from pathlib import Path

from ..experiments.base import ExperimentResult
from .serialization import to_jsonable

__all__ = ["ResultStore"]

#: Bumped when the on-disk schema changes; mismatching files are ignored on
#: load so a resume never trips over a stale format.
SCHEMA_VERSION = 1


class ResultStore:
    """Persist and reload experiment results under a root directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def path_for(self, experiment_id: str, scale: str, seed: int) -> Path:
        """The JSON file backing one ``(experiment_id, scale, seed)`` result."""
        return self.root / scale / f"seed{int(seed)}" / f"{experiment_id}.json"

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, result: ExperimentResult, scale: str, seed: int) -> Path:
        """Write ``result`` to disk, replacing any previous version."""
        path = self.path_for(result.experiment_id, scale, seed)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema_version": SCHEMA_VERSION,
            "experiment_id": result.experiment_id,
            "scale": scale,
            "seed": int(seed),
            "description": result.description,
            "columns": list(result.columns),
            "rows": to_jsonable(result.rows),
            "paper_expectation": result.paper_expectation,
            "notes": to_jsonable(result.notes),
        }
        # A per-writer unique temp file in the destination directory: unique
        # so concurrent workers saving the same key never share a temp file,
        # same directory so os.replace stays an atomic same-filesystem rename.
        # Opened with mode 0o666 + O_EXCL (not mkstemp, whose private 0600
        # would survive the rename): the kernel applies the process umask
        # natively, so stored results get the same permissions a plain
        # open() would produce.
        temp_name = str(path.parent / f".{path.stem}-{os.getpid()}-{uuid.uuid4().hex}.json.tmp")
        handle = os.open(temp_name, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o666)
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                stream.write(json.dumps(payload, indent=2) + "\n")
                stream.flush()
                os.fsync(stream.fileno())
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        return path

    def load(self, experiment_id: str, scale: str, seed: int) -> ExperimentResult:
        """Reload a stored result.

        Raises
        ------
        FileNotFoundError
            If the result was never stored (check :meth:`has` first).
        """
        path = self.path_for(experiment_id, scale, seed)
        payload = json.loads(path.read_text(encoding="utf-8"))
        return ExperimentResult(
            experiment_id=payload["experiment_id"],
            description=payload["description"],
            columns=list(payload["columns"]),
            rows=[list(row) for row in payload["rows"]],
            paper_expectation=payload.get("paper_expectation", ""),
            notes=payload.get("notes", {}),
        )

    def has(self, experiment_id: str, scale: str, seed: int) -> bool:
        """Whether a loadable result exists for the key."""
        path = self.path_for(experiment_id, scale, seed)
        if not path.is_file():
            return False
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return False
        return payload.get("schema_version") == SCHEMA_VERSION

    def completed(self, scale: str, seed: int) -> list[str]:
        """Experiment ids with a stored result for ``(scale, seed)``, sorted."""
        directory = self.root / scale / f"seed{int(seed)}"
        if not directory.is_dir():
            return []
        return sorted(
            path.stem for path in directory.glob("*.json") if self.has(path.stem, scale, seed)
        )

    def discard(self, experiment_id: str, scale: str, seed: int) -> bool:
        """Delete one stored result; returns whether a file was removed."""
        path = self.path_for(experiment_id, scale, seed)
        if path.is_file():
            path.unlink()
            return True
        return False
