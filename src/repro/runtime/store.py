"""Disk-backed store for experiment results.

``run-all`` used to be all-or-nothing: a crash in experiment 17 of 20 threw
away the first 16.  The :class:`ResultStore` persists every
:class:`~repro.experiments.base.ExperimentResult` as one JSON file keyed by
``(experiment_id, scale, seed)`` so a re-run with ``--resume`` loads finished
experiments instead of recomputing them.

Layout on disk::

    <root>/<scale>/seed<seed>/<experiment_id>.json

Writes are atomic (write to a temp file, then ``os.replace``) so a killed
process never leaves a half-written result that would poison a resume.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from ..experiments.base import ExperimentResult
from .serialization import to_jsonable

__all__ = ["ResultStore"]

#: Bumped when the on-disk schema changes; mismatching files are ignored on
#: load so a resume never trips over a stale format.
SCHEMA_VERSION = 1


class ResultStore:
    """Persist and reload experiment results under a root directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def path_for(self, experiment_id: str, scale: str, seed: int) -> Path:
        """The JSON file backing one ``(experiment_id, scale, seed)`` result."""
        return self.root / scale / f"seed{int(seed)}" / f"{experiment_id}.json"

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, result: ExperimentResult, scale: str, seed: int) -> Path:
        """Write ``result`` to disk, replacing any previous version."""
        path = self.path_for(result.experiment_id, scale, seed)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema_version": SCHEMA_VERSION,
            "experiment_id": result.experiment_id,
            "scale": scale,
            "seed": int(seed),
            "description": result.description,
            "columns": list(result.columns),
            "rows": to_jsonable(result.rows),
            "paper_expectation": result.paper_expectation,
            "notes": to_jsonable(result.notes),
        }
        temp_path = path.with_suffix(".json.tmp")
        temp_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        os.replace(temp_path, path)
        return path

    def load(self, experiment_id: str, scale: str, seed: int) -> ExperimentResult:
        """Reload a stored result.

        Raises
        ------
        FileNotFoundError
            If the result was never stored (check :meth:`has` first).
        """
        path = self.path_for(experiment_id, scale, seed)
        payload = json.loads(path.read_text(encoding="utf-8"))
        return ExperimentResult(
            experiment_id=payload["experiment_id"],
            description=payload["description"],
            columns=list(payload["columns"]),
            rows=[list(row) for row in payload["rows"]],
            paper_expectation=payload.get("paper_expectation", ""),
            notes=payload.get("notes", {}),
        )

    def has(self, experiment_id: str, scale: str, seed: int) -> bool:
        """Whether a loadable result exists for the key."""
        path = self.path_for(experiment_id, scale, seed)
        if not path.is_file():
            return False
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return False
        return payload.get("schema_version") == SCHEMA_VERSION

    def completed(self, scale: str, seed: int) -> list[str]:
        """Experiment ids with a stored result for ``(scale, seed)``, sorted."""
        directory = self.root / scale / f"seed{int(seed)}"
        if not directory.is_dir():
            return []
        return sorted(
            path.stem for path in directory.glob("*.json") if self.has(path.stem, scale, seed)
        )

    def discard(self, experiment_id: str, scale: str, seed: int) -> bool:
        """Delete one stored result; returns whether a file was removed."""
        path = self.path_for(experiment_id, scale, seed)
        if path.is_file():
            path.unlink()
            return True
        return False
