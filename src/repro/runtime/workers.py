"""Process-backed adaptation workers: real cores for the fine-tune hot path.

The adaptation hot path is hundreds of *small* numpy operations per epoch —
tiny gemms, elementwise updates, RNG draws — and CPython holds the GIL
through nearly all of them (the kernels are too small for numpy to release
it for long).  A thread pool therefore adds safety but no speed:
``benchmark_report.txt`` measured pooled ``adapt_many`` at jobs=4 running at
**0.94x of serial**.  :class:`AdaptationWorkerPool` moves the work onto a
``ProcessPoolExecutor`` so a fleet adaptation can actually use the machine.

Design points:

* **Weights ship once per worker.**  The pool's initializer receives the
  pristine source model and the prepared strategy as ``initargs`` — pickled
  once per worker under the ``spawn`` start method, inherited copy-on-write
  under ``fork`` — and stashes them in a module global.  Per-task traffic is
  only ``(target_id, inputs, seed)`` out and ``(report, adapted model)``
  back.
* **Bit-identical to in-process adaptation.**  The worker runs exactly the
  computation :meth:`AdaptationService._run_adaptation` runs — deep copy of
  the start model, one seeded ``strategy.adapt`` — and pickling preserves
  float64 bits exactly, so ``executor="process"`` results are byte-equal to
  serial results (the equivalence oracles in ``tests/runtime`` and
  ``tests/sim`` pin this for all six schemes).
* **Registry-addressable strategies.**  Everything crossing the pool
  boundary must pickle: strategies are plain objects built through
  :mod:`repro.engine.registry` (no closures), models are numpy-parameter
  containers, reports are JSON-friendly dataclasses.
* **Crash isolation.**  :meth:`AdaptationWorkerPool.restart` *kills* the
  worker processes (it does not drain them) and stands up a fresh pool.
  In-flight futures then raise instead of hanging — queued ones come back
  ``CancelledError``, running ones ``BrokenProcessPool`` — and
  :meth:`AdaptationWorkerPool.collect` translates both into the typed
  :class:`WorkerCrashError` the serving layer answers as an error envelope.
"""

from __future__ import annotations

import copy
import multiprocessing
import threading
from concurrent.futures import CancelledError, Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

import numpy as np

from ..engine.strategy import AdaptationStrategy, StackJob, StrategyOutcome
from ..nn.models import RegressionModel
from ..obs import MetricsRegistry, Stopwatch, use_metrics
from .report import AdaptationReport

__all__ = [
    "EXECUTOR_KINDS",
    "AdaptationWorkerPool",
    "WorkerCrashError",
    "default_start_method",
]

#: Executor kinds the runtime and serving layers accept.
EXECUTOR_KINDS = ("thread", "process")


class WorkerCrashError(RuntimeError):
    """An adaptation was in flight when its worker pool was killed.

    Raised in the *submitting* process (never hangs the caller): the serving
    layer turns it into a typed error envelope, and because adaptation is
    deterministic the request can simply be retried on the respawned pool.
    """


def default_start_method() -> str:
    """``fork`` where available (cheap workers, copy-on-write weights), else ``spawn``."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


# One payload per worker *process*: set once by the pool initializer, read by
# every task that worker runs.  Module-global (not a closure) so the worker
# entry points pickle under every start method.
_WORKER_STATE: dict = {}


def _init_worker(source_model: RegressionModel, strategy: AdaptationStrategy) -> None:
    _WORKER_STATE["source_model"] = source_model
    _WORKER_STATE["strategy"] = strategy


def _worker_adapt(
    target_id: str,
    inputs: np.ndarray,
    seed: int,
    base_model: RegressionModel | None,
    warm_epochs: int | None,
) -> tuple[AdaptationReport, StrategyOutcome, dict]:
    """Run one adaptation inside a worker process.

    Mirrors :meth:`AdaptationService._run_adaptation` exactly — same deep
    copy, same ``strategy.adapt`` call shape — which is what keeps process
    results bit-identical to in-process ones.  The heavyweight
    ``outcome.result`` (per-sample prediction arrays) is dropped before the
    outcome crosses back: the parent's bookkeeping needs only the adapted
    model, the losses, and the density map.

    The third element is a metrics **delta**: the work runs under a fresh
    worker-local :class:`~repro.obs.MetricsRegistry` (the parent's registry
    does not exist in this process), whose snapshot rides home on the
    result so :meth:`AdaptationWorkerPool.collect` can fold engine-level
    counters (epochs, epoch timing) into the parent's registry.
    """
    source = _WORKER_STATE["source_model"]
    strategy = _WORKER_STATE["strategy"]
    model = copy.deepcopy(base_model if base_model is not None else source)
    delta = MetricsRegistry()
    watch = Stopwatch()
    with use_metrics(delta):
        outcome = strategy.adapt(
            model,
            inputs,
            seed=seed,
            base_model=model if base_model is not None else None,
            warm_epochs=warm_epochs,
        )
    duration = watch.elapsed()
    report = AdaptationReport.from_outcome(target_id, seed, outcome, len(inputs), duration)
    outcome.result = None
    return report, outcome, delta.snapshot()


def _worker_adapt_stacked(
    stack: list[tuple[str, np.ndarray, int, "RegressionModel | None"]],
    warm_epochs: int | None,
) -> tuple[list[tuple["AdaptationReport | None", "StrategyOutcome | None", "Exception | None"]], dict]:
    """Run one stacked (``train_batching``) adaptation group inside a worker.

    ``stack`` is a list of ``(target_id, inputs, seed, base_model)`` tuples
    that travel together through
    :meth:`~repro.engine.AdaptationStrategy.adapt_stacked` — batching
    *within* this worker composes with processes *across* workers.
    ``base_model`` is ``None`` for a cold adaptation from the shipped source
    model; the streaming service sends a previously adapted model there (with
    a ``warm_epochs`` schedule) for warm-start re-adaptations.  Per-job
    failures come back as data (``(None, None, error)``) so one bad target
    does not poison its stack-mates; the metrics delta rides home once per
    stack.
    """
    source = _WORKER_STATE["source_model"]
    strategy = _WORKER_STATE["strategy"]
    jobs = [
        StackJob(
            model=copy.deepcopy(source if base_model is None else base_model),
            inputs=inputs,
            seed=seed,
            target_id=target_id,
        )
        for target_id, inputs, seed, base_model in stack
    ]
    delta = MetricsRegistry()
    watch = Stopwatch()
    with use_metrics(delta):
        outcomes = strategy.adapt_stacked(jobs, warm_epochs=warm_epochs)
    duration = watch.elapsed()
    results: list[tuple[AdaptationReport | None, StrategyOutcome | None, Exception | None]] = []
    for (target_id, inputs, seed, _base), (outcome, error) in zip(stack, outcomes):
        if error is not None:
            results.append((None, None, error))
            continue
        report = AdaptationReport.from_outcome(target_id, seed, outcome, len(inputs), duration)
        outcome.result = None
        results.append((report, outcome, None))
    return results, delta.snapshot()


class AdaptationWorkerPool:
    """A restartable process pool running seeded adaptations on real cores.

    Parameters
    ----------
    workers:
        Worker process count.
    source_model:
        The pristine (already ``eval()``-ed) source model shipped to every
        worker at initialization — once, not per task.
    strategy:
        The prepared :class:`~repro.engine.AdaptationStrategy`; must pickle
        (all registry-built strategies do).
    start_method:
        Multiprocessing start method; defaults to
        :func:`default_start_method`.
    metrics:
        Optional parent :class:`~repro.obs.MetricsRegistry`.  When given,
        worker metric deltas are merged into it by :meth:`collect`, and the
        pool counts its own lifecycle events (tasks, restarts, killed
        workers, crash errors) there.
    """

    def __init__(
        self,
        workers: int,
        source_model: RegressionModel,
        strategy: AdaptationStrategy,
        *,
        start_method: str | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = int(workers)
        self.start_method = start_method if start_method else default_start_method()
        self._payload = (source_model, strategy)
        self._lock = threading.Lock()
        self._closed = False
        self.metrics = metrics
        self._pool: ProcessPoolExecutor | None = self._new_pool()

    def _count(self, name: str, value: float = 1, **labels) -> None:
        if self.metrics is not None:
            self.metrics.counter(name, value, **labels)

    def _new_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=multiprocessing.get_context(self.start_method),
            initializer=_init_worker,
            initargs=self._payload,
        )

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        target_id: str,
        inputs: np.ndarray,
        seed: int,
        base_model: RegressionModel | None = None,
        warm_epochs: int | None = None,
    ) -> "Future[tuple[AdaptationReport, StrategyOutcome]]":
        """Queue one adaptation; resolve the future with :meth:`collect`."""
        with self._lock:
            if self._closed or self._pool is None:
                raise WorkerCrashError("the adaptation worker pool is closed")
            pool = self._pool
        try:
            future = pool.submit(
                _worker_adapt, target_id, inputs, seed, base_model, warm_epochs
            )
        except RuntimeError as exc:
            # The pool broke or was swapped out between the lock release and
            # the submit; surface the same typed error collect() would.
            self._count("workers.crash_errors", stage="submit")
            raise WorkerCrashError(
                "the adaptation worker pool died before the task was queued; retry"
            ) from exc
        self._count("workers.tasks")
        return future

    def collect(self, future: "Future") -> tuple[AdaptationReport, StrategyOutcome]:
        """Resolve a :meth:`submit` future, translating pool-death failures.

        ``CancelledError`` (queued when the pool was killed) and
        ``BrokenProcessPool`` (running when the pool was killed) both become
        :class:`WorkerCrashError` — an ``Exception`` the serving layer's
        errors-as-data discipline knows how to answer.  Genuine adaptation
        errors raised inside the worker (e.g.
        :class:`~repro.core.adapter.NoConfidentSamplesError`) re-raise
        unchanged, exactly as the in-process path would raise them.

        The worker's piggybacked metrics delta is folded into the pool's
        parent registry here (the one place every successful result passes
        through), then dropped from the returned pair.
        """
        try:
            report, outcome, delta = future.result()
        except (CancelledError, BrokenProcessPool) as exc:
            self._count("workers.crash_errors", stage="collect")
            raise WorkerCrashError(
                "the worker pool was killed while this adaptation was in flight; "
                "adaptation is deterministic, so retrying on the respawned pool "
                "reproduces the same result"
            ) from exc
        if self.metrics is not None:
            self.metrics.merge(delta)
        return report, outcome

    def adapt(
        self,
        target_id: str,
        inputs: np.ndarray,
        seed: int,
        base_model: RegressionModel | None = None,
        warm_epochs: int | None = None,
    ) -> tuple[AdaptationReport, StrategyOutcome]:
        """Synchronous submit-and-collect convenience."""
        return self.collect(self.submit(target_id, inputs, seed, base_model, warm_epochs))

    def submit_stacked(
        self,
        stack: list[tuple[str, np.ndarray, int, "RegressionModel | None"]],
        warm_epochs: int | None = None,
    ) -> "Future":
        """Queue one ``train_batching`` stack; resolve with :meth:`collect_stacked`."""
        with self._lock:
            if self._closed or self._pool is None:
                raise WorkerCrashError("the adaptation worker pool is closed")
            pool = self._pool
        try:
            future = pool.submit(_worker_adapt_stacked, stack, warm_epochs)
        except RuntimeError as exc:
            self._count("workers.crash_errors", stage="submit")
            raise WorkerCrashError(
                "the adaptation worker pool died before the task was queued; retry"
            ) from exc
        self._count("workers.tasks")
        return future

    def collect_stacked(
        self, future: "Future"
    ) -> list[tuple["AdaptationReport | None", "StrategyOutcome | None", "Exception | None"]]:
        """Resolve a :meth:`submit_stacked` future (same crash translation as :meth:`collect`)."""
        try:
            results, delta = future.result()
        except (CancelledError, BrokenProcessPool) as exc:
            self._count("workers.crash_errors", stage="collect")
            raise WorkerCrashError(
                "the worker pool was killed while this adaptation was in flight; "
                "adaptation is deterministic, so retrying on the respawned pool "
                "reproduces the same result"
            ) from exc
        if self.metrics is not None:
            self.metrics.merge(delta)
        return results

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def worker_pids(self) -> list[int]:
        """PIDs of the live worker processes (spawned lazily on first submit)."""
        with self._lock:
            pool = self._pool
        if pool is None:
            return []
        processes = getattr(pool, "_processes", None) or {}
        return sorted(p.pid for p in processes.values() if p.pid is not None)

    def restart(self) -> list[int]:
        """Kill the worker processes and stand up a fresh pool.

        Models a crashed-and-respawned worker fleet, so it terminates the
        processes instead of draining them.  Futures that were queued or
        running raise (``CancelledError`` / ``BrokenProcessPool``, both
        translated by :meth:`collect`) rather than hang.  Returns the PIDs
        that were killed.
        """
        with self._lock:
            if self._closed:
                raise WorkerCrashError("the adaptation worker pool is closed")
            old, self._pool = self._pool, None
        killed: list[int] = []
        if old is not None:
            processes = list((getattr(old, "_processes", None) or {}).values())
            for process in processes:
                if process.pid is not None:
                    killed.append(process.pid)
                process.terminate()
            old.shutdown(wait=True, cancel_futures=True)
        with self._lock:
            if not self._closed:
                self._pool = self._new_pool()
        self._count("workers.restarts")
        if killed:
            self._count("workers.killed", len(killed))
        return sorted(killed)

    def close(self) -> None:
        """Shut the pool down for good (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            old, self._pool = self._pool, None
        if old is not None:
            old.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "AdaptationWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
