"""Deployment-time runtime: multi-target adaptation service and result store.

This package is the serving seam of the reproduction — everything needed to
run TASFAR for a *fleet* of target domains rather than one figure at a time:

* :class:`AdaptationService` — register the source model and calibration
  once, then adapt many targets (optionally on a worker pool) with an LRU
  cache of adapted models and JSON-serializable per-target reports;
* :class:`AdaptationReport` — the per-target record the service keeps;
* :class:`ResultStore` — disk persistence for experiment results, making
  ``run-all --resume`` incremental;
* :class:`SnapshotStore` — the warm tier under the LRU: evicted adapted
  models spill to ``repro.snapshot/v1`` files and warm-resume on the next
  touch instead of cold-adapting.

See ``examples/multi_user_service.py`` for an end-to-end walkthrough and
``python -m repro.cli adapt-many --help`` for the CLI entry point.
"""

from .report import AdaptationReport
from .serialization import to_jsonable
from .service import AdaptationService, canonical_target_id
from .snapshots import SNAPSHOT_SCHEMA, SnapshotError, SnapshotStore
from .store import ResultStore
from .workers import EXECUTOR_KINDS, AdaptationWorkerPool, WorkerCrashError

__all__ = [
    "EXECUTOR_KINDS",
    "SNAPSHOT_SCHEMA",
    "AdaptationReport",
    "AdaptationService",
    "AdaptationWorkerPool",
    "ResultStore",
    "SnapshotError",
    "SnapshotStore",
    "WorkerCrashError",
    "canonical_target_id",
    "to_jsonable",
]
