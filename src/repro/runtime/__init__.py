"""Deployment-time runtime: multi-target adaptation service and result store.

This package is the serving seam of the reproduction — everything needed to
run TASFAR for a *fleet* of target domains rather than one figure at a time:

* :class:`AdaptationService` — register the source model and calibration
  once, then adapt many targets (optionally on a worker pool) with an LRU
  cache of adapted models and JSON-serializable per-target reports;
* :class:`AdaptationReport` — the per-target record the service keeps;
* :class:`ResultStore` — disk persistence for experiment results, making
  ``run-all --resume`` incremental.

See ``examples/multi_user_service.py`` for an end-to-end walkthrough and
``python -m repro.cli adapt-many --help`` for the CLI entry point.
"""

from .report import AdaptationReport
from .serialization import to_jsonable
from .service import AdaptationService, canonical_target_id
from .store import ResultStore
from .workers import EXECUTOR_KINDS, AdaptationWorkerPool, WorkerCrashError

__all__ = [
    "EXECUTOR_KINDS",
    "AdaptationReport",
    "AdaptationService",
    "AdaptationWorkerPool",
    "ResultStore",
    "WorkerCrashError",
    "canonical_target_id",
    "to_jsonable",
]
