"""JSON-friendly conversion helpers shared by the runtime subsystem.

Experiment results and adaptation reports carry numpy scalars, arrays and the
occasional rich diagnostic object (e.g. a density map) in free-form ``notes``
dictionaries.  :func:`to_jsonable` converts what can be converted losslessly
and falls back to a ``repr`` string for anything else, so persisting a result
never fails — at worst a diagnostic becomes opaque text.
"""

from __future__ import annotations

import numpy as np

__all__ = ["to_jsonable"]


def to_jsonable(value: object) -> object:
    """Recursively convert ``value`` into JSON-serializable built-ins.

    Numpy scalars become Python scalars, arrays become (nested) lists, tuples
    become lists and dictionary keys are stringified.  Objects with no natural
    JSON form are replaced by their ``repr`` — lossy but non-fatal, which is
    the right trade-off for free-form diagnostics.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return to_jsonable(value.tolist())
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    return repr(value)
