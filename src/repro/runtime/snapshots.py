"""Tiered persistence for adapted per-target model state (``repro.snapshot/v1``).

The LRU cache in :class:`~repro.runtime.AdaptationService` is a *hot tier*:
eviction used to throw the adapted model away, so re-serving that target cost
a full cold adaptation.  The :class:`SnapshotStore` is the warm tier under it:
on eviction the service spills the adapted model's exact weights, its
adaptation report, and (for streaming targets) the drift-monitor state to one
JSON file per target; on the next touch of that target the service resumes
the model from the snapshot — bit-identical parameters, original report —
instead of cold-adapting.

Durability discipline (same as :class:`~repro.runtime.ResultStore`):

* writes go to a per-writer unique temp file (pid + uuid, ``O_EXCL``) in the
  destination directory, are ``fsync``\\ ed, then ``os.replace``\\ d into place —
  a killed writer can never leave a torn snapshot under the final name;
* every snapshot embeds a SHA-256 checksum over its canonical JSON body, so
  a corrupted or truncated file is *detected* on load (typed
  :class:`SnapshotError`) rather than silently served;
* leftover temp files from crashed writers are garbage-collected the next
  time a store opens on the directory.

Weights are encoded as base64 of the C-order float64 bytes, so a resumed
model carries byte-identical parameters (`nn.serialization.parameter_bytes`)
to the model that was evicted — the equivalence the snapshot test battery
pins for all six schemes.
"""

from __future__ import annotations

import base64
import binascii
import hashlib
import json
import os
import re
import uuid
from pathlib import Path

import numpy as np

from ..core.density_map import LabelDensityMap
from ..nn.module import Module

__all__ = [
    "SNAPSHOT_SCHEMA",
    "SnapshotError",
    "SnapshotStore",
    "encode_array",
    "decode_array",
    "encode_model_weights",
    "restore_model_weights",
    "encode_density_map",
    "decode_density_map",
    "encode_drift_state",
    "decode_drift_state",
]

#: Version tag embedded in every snapshot file; files carrying any other
#: schema string are rejected with a :class:`SnapshotError` on load.
SNAPSHOT_SCHEMA = "repro.snapshot/v1"

_SLUG_UNSAFE = re.compile(r"[^A-Za-z0-9._-]")


class SnapshotError(Exception):
    """A snapshot file could not be decoded into adapted-model state.

    Raised for every failure mode between "file exists" and "state restored":
    unreadable file, invalid JSON, unknown schema version, checksum mismatch
    (torn or corrupted write), and structurally broken payload sections.  The
    service layer treats any :class:`SnapshotError` as a clean cache miss —
    count it, discard the file, cold-adapt — never as a crash.
    """


# ----------------------------------------------------------------------
# Array / weights codec
# ----------------------------------------------------------------------
def encode_array(array: np.ndarray) -> dict:
    """Encode one array as shape + dtype + base64 of its C-order bytes."""
    array = np.ascontiguousarray(array)
    return {
        "shape": [int(size) for size in array.shape],
        "dtype": array.dtype.str,
        "data": base64.b64encode(array.tobytes()).decode("ascii"),
    }


def decode_array(spec: dict) -> np.ndarray:
    """Decode :func:`encode_array` output; any malformation is a :class:`SnapshotError`."""
    try:
        shape = tuple(int(size) for size in spec["shape"])
        dtype = np.dtype(spec["dtype"])
        raw = base64.b64decode(spec["data"].encode("ascii"), validate=True)
    except (KeyError, TypeError, ValueError, AttributeError, binascii.Error) as exc:
        raise SnapshotError(f"malformed array encoding: {exc}") from exc
    expected = dtype.itemsize * int(np.prod(shape, dtype=np.int64))
    if len(raw) != expected:
        raise SnapshotError(
            f"array payload holds {len(raw)} bytes but shape {shape} of {dtype} needs {expected}"
        )
    return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()


def encode_model_weights(model: Module) -> list[dict]:
    """Every parameter of ``model``, in parameter order, exactly as stored bytes."""
    return [
        {"name": param.name or "param", **encode_array(param.data)}
        for param in model.parameters()
    ]


def restore_model_weights(model: Module, weights: object) -> Module:
    """Load :func:`encode_model_weights` output back into ``model`` in order.

    Count, shape, and dtype must all match the model — a snapshot written
    for a different architecture must fail loudly, not be cast into place.
    """
    params = model.parameters()
    if not isinstance(weights, list) or len(weights) != len(params):
        found = len(weights) if isinstance(weights, list) else f"{type(weights).__name__}"
        raise SnapshotError(
            f"snapshot holds {found} weight arrays but the model has {len(params)} parameters"
        )
    values = [decode_array(spec) for spec in weights]
    for index, (value, param) in enumerate(zip(values, params)):
        if value.shape != param.data.shape:
            raise SnapshotError(
                f"weight {index} shape mismatch: snapshot {value.shape} vs model {param.data.shape}"
            )
        if value.dtype != param.data.dtype:
            raise SnapshotError(
                f"weight {index} dtype mismatch: snapshot {value.dtype} vs model {param.data.dtype}"
            )
    for value, param in zip(values, params):
        param.data[...] = value
    return model


# ----------------------------------------------------------------------
# Density map / drift state codec
# ----------------------------------------------------------------------
def encode_density_map(density: LabelDensityMap | None) -> dict | None:
    """Encode a density map: its grid edges plus the accumulated densities."""
    if density is None:
        return None
    return {
        "edges": [encode_array(edge) for edge in density.edges],
        "densities": encode_array(density.densities),
        "accumulated": int(density._accumulated),
    }


def decode_density_map(payload: object) -> LabelDensityMap | None:
    """Rebuild a :class:`LabelDensityMap` from :func:`encode_density_map` output."""
    if payload is None:
        return None
    if not isinstance(payload, dict):
        raise SnapshotError(f"density map payload must be an object, got {type(payload).__name__}")
    try:
        edge_specs = list(payload["edges"])
        densities_spec = payload["densities"]
        accumulated = int(payload.get("accumulated", 0))
    except (KeyError, TypeError, ValueError) as exc:
        raise SnapshotError(f"malformed density map payload: {exc}") from exc
    edges = [decode_array(spec) for spec in edge_specs]
    try:
        density = LabelDensityMap(edges)
    except ValueError as exc:
        raise SnapshotError(f"snapshot density map has an invalid grid: {exc}") from exc
    densities = decode_array(densities_spec)
    if densities.shape != density.shape:
        raise SnapshotError(
            f"density grid shape mismatch: densities {densities.shape} vs edges {density.shape}"
        )
    density.densities = densities
    density._accumulated = accumulated
    return density


def encode_drift_state(monitor) -> dict | None:
    """Encode a :class:`~repro.streaming.DensityDriftMonitor` and its detector.

    Captures everything the monitor needs to carry a restart: the Page-
    Hinkley detector's running scalars, the reference map of the last
    (re-)adaptation, and the exponentially decayed recent-window map.  The
    error model is *not* serialized — it belongs to the service's calibration
    and is re-attached on :func:`decode_drift_state`.
    """
    if monitor is None:
        return None
    detector = monitor.detector
    recent = monitor.recent
    return {
        "detector": {
            "threshold": float(detector.threshold),
            "delta": float(detector.delta),
            "min_samples": int(detector.min_samples),
            "n_observations": int(detector.n_observations),
            "mean": float(detector._mean),
            "cumulative": float(detector._cumulative),
            "cumulative_min": float(detector._cumulative_min),
            "drifted": bool(detector.drifted),
        },
        "window_decay": float(monitor.window_decay),
        "warmup_events": int(monitor.warmup_events),
        "reference": encode_density_map(monitor.reference),
        "recent": {
            "densities": encode_array(recent._map.densities),
            "accumulated": int(recent._map._accumulated),
            "n_events": int(recent.n_events),
            "n_updates": int(recent.n_updates),
        },
    }


def decode_drift_state(payload: object, error_model=None):
    """Rebuild a drift monitor from :func:`encode_drift_state` output.

    ``error_model`` is the calibration's instance-label family (the one the
    reference map was estimated with); it is supplied by the restoring
    service, never read from disk.  ``last_observation`` restarts as ``None``
    — it is a diagnostic of the last in-process batch, not monitor state.
    """
    if payload is None:
        return None
    from ..streaming.drift import DensityDriftMonitor, DriftDetector

    if not isinstance(payload, dict):
        raise SnapshotError(f"drift state payload must be an object, got {type(payload).__name__}")
    try:
        det = payload["detector"]
        detector = DriftDetector(
            threshold=float(det["threshold"]),
            delta=float(det["delta"]),
            min_samples=int(det["min_samples"]),
        )
        reference = decode_density_map(payload["reference"])
        if reference is None:
            raise SnapshotError("drift state requires a reference density map")
        monitor = DensityDriftMonitor(
            reference,
            detector,
            window_decay=float(payload["window_decay"]),
            warmup_events=int(payload["warmup_events"]),
            error_model=error_model,
        )
        # rebase() inside __init__ re-normalized the reference and reset the
        # detector; restore the exact stored state over both so a decoded
        # monitor is bit-identical to the one that was encoded.
        monitor.reference = reference
        detector.n_observations = int(det["n_observations"])
        detector._mean = float(det["mean"])
        detector._cumulative = float(det["cumulative"])
        detector._cumulative_min = float(det["cumulative_min"])
        detector.drifted = bool(det["drifted"])
        recent = payload["recent"]
        densities = decode_array(recent["densities"])
        if densities.shape != monitor.recent.shape:
            raise SnapshotError(
                f"recent-window shape mismatch: {densities.shape} vs grid {monitor.recent.shape}"
            )
        monitor.recent._map.densities = densities
        monitor.recent._map._accumulated = int(recent["accumulated"])
        monitor.recent.n_events = int(recent["n_events"])
        monitor.recent.n_updates = int(recent["n_updates"])
    except SnapshotError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise SnapshotError(f"malformed drift state payload: {exc}") from exc
    return monitor


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------
def _checksum(body: dict) -> str:
    """SHA-256 over the canonical JSON of ``body`` (checksum key excluded)."""
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class SnapshotStore:
    """One ``repro.snapshot/v1`` JSON file per target under a root directory.

    Opening a store garbage-collects temp files left behind by writers that
    crashed mid-spill (their count lands in :attr:`collected_temp_files`).
    ``save`` is atomic and durable; ``load`` either returns a complete,
    checksum-verified payload, returns ``None`` for a clean miss, or raises
    :class:`SnapshotError` for a file that exists but cannot be trusted.
    Concurrent writers racing on the same target are safe: each writes its
    own ``O_EXCL`` temp file and the last rename wins with a complete
    document either way.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.collected_temp_files = self._collect_temp_files()

    def _collect_temp_files(self) -> int:
        """Remove orphaned ``.*.tmp`` files from crashed writers; return the count."""
        collected = 0
        for leftover in self.root.glob(".*.tmp"):
            try:
                leftover.unlink()
            except OSError:
                continue
            collected += 1
        return collected

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def path_for(self, target_id: str) -> Path:
        """The file backing one target's snapshot.

        Target ids are arbitrary strings (slashes, unicode, …), so the name
        pairs a readable sanitized slug with a digest of the exact id — two
        ids that sanitize identically still get distinct files.
        """
        target_id = target_id if isinstance(target_id, str) else str(target_id)
        slug = _SLUG_UNSAFE.sub("_", target_id)[:48] or "target"
        digest = hashlib.sha256(target_id.encode("utf-8")).hexdigest()[:12]
        return self.root / f"{slug}-{digest}.json"

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, target_id: str, payload: dict) -> Path:
        """Atomically write one target's snapshot, replacing any previous one.

        ``payload`` carries the caller's sections (``report``, ``weights``,
        ``stream``); the store stamps the schema version, the exact target
        id, and the body checksum.
        """
        target_id = target_id if isinstance(target_id, str) else str(target_id)
        path = self.path_for(target_id)
        body = dict(payload)
        body.pop("checksum", None)
        body["schema"] = SNAPSHOT_SCHEMA
        body["target_id"] = target_id
        body["checksum"] = _checksum(body)
        text = json.dumps(body, sort_keys=True)
        # Same discipline as ResultStore.save: unique O_EXCL temp in the
        # destination directory, fsync before the atomic same-filesystem
        # rename, unlink the temp on any failure.
        temp_name = str(path.parent / f".{path.stem}-{os.getpid()}-{uuid.uuid4().hex}.json.tmp")
        handle = os.open(temp_name, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o666)
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                stream.write(text + "\n")
                stream.flush()
                os.fsync(stream.fileno())
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        return path

    def load(self, target_id: str) -> dict | None:
        """One target's verified payload, ``None`` if absent.

        Raises
        ------
        SnapshotError
            If a file exists for the target but is unreadable, not JSON, of
            an unknown schema version, fails its checksum, or names a
            different target (all the ways a snapshot can lie).
        """
        target_id = target_id if isinstance(target_id, str) else str(target_id)
        path = self.path_for(target_id)
        if not path.is_file():
            return None
        try:
            text = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            raise SnapshotError(f"cannot read snapshot {path.name}: {exc}") from exc
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SnapshotError(f"snapshot {path.name} is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise SnapshotError(
                f"snapshot {path.name} must be a JSON object, got {type(payload).__name__}"
            )
        schema = payload.get("schema")
        if schema != SNAPSHOT_SCHEMA:
            raise SnapshotError(
                f"snapshot {path.name} carries schema {schema!r}; this build reads {SNAPSHOT_SCHEMA!r}"
            )
        stored = payload.get("checksum")
        body = {key: value for key, value in payload.items() if key != "checksum"}
        if stored != _checksum(body):
            raise SnapshotError(
                f"snapshot {path.name} failed its checksum (torn or corrupted write)"
            )
        if payload.get("target_id") != target_id:
            raise SnapshotError(
                f"snapshot {path.name} names target {payload.get('target_id')!r}, "
                f"expected {target_id!r}"
            )
        return payload

    def has(self, target_id: str) -> bool:
        """Whether a *loadable* snapshot exists (corrupt files read as absent)."""
        try:
            return self.load(target_id) is not None
        except SnapshotError:
            return False

    def discard(self, target_id: str) -> bool:
        """Delete one target's snapshot file; returns whether one was removed."""
        path = self.path_for(target_id)
        try:
            path.unlink()
        except FileNotFoundError:
            return False
        return True

    # ------------------------------------------------------------------
    # Listing
    # ------------------------------------------------------------------
    def files(self) -> list[Path]:
        """Every snapshot file currently on disk (sorted; no validity check)."""
        return sorted(path for path in self.root.glob("*.json") if path.is_file())

    def targets(self) -> list[str]:
        """Target ids with a loadable snapshot, sorted (corrupt files skipped)."""
        found = []
        for path in self.files():
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                continue
            if not isinstance(payload, dict) or payload.get("schema") != SNAPSHOT_SCHEMA:
                continue
            target_id = payload.get("target_id")
            if isinstance(target_id, str) and self.path_for(target_id) == path:
                found.append(target_id)
        return sorted(found)
