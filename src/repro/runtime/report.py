"""Per-target adaptation reports.

An :class:`AdaptationReport` is the JSON-serializable record the
:class:`~repro.runtime.AdaptationService` keeps for every target domain it has
adapted: how the target's data split into confident/uncertain parts, how the
fine-tuning went, and how long the adaptation took.  Unlike
:class:`~repro.core.adapter.AdaptationResult` it carries no model or numpy
arrays, so it can be logged, shipped over the wire, and kept for millions of
targets without holding model memory.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from ..core.adapter import AdaptationResult
from .serialization import to_jsonable

__all__ = ["AdaptationReport"]


@dataclass
class AdaptationReport:
    """JSON-serializable summary of one target-domain adaptation.

    Attributes
    ----------
    target_id:
        The service-level identifier of the target domain (a user, a scene,
        a district).
    seed:
        The seed that made this adaptation deterministic; re-running
        ``adapt`` with the same data and seed reproduces the result exactly.
    n_samples:
        Number of unlabeled adaptation samples the target provided.
    n_confident, n_uncertain:
        Size of the confidence split (Section III-B of the paper).
    threshold:
        The source confidence threshold ``tau`` used for the split.
    mean_uncertainty:
        Mean MC-dropout uncertainty over the target samples.
    n_training_samples:
        Number of samples in the weighted fine-tuning set.
    losses:
        Per-epoch fine-tuning losses.
    stopped_epoch:
        Epoch at which loss-drop early stopping fired, or ``None``.
    density_map_shape:
        Grid shape of the estimated label density map.
    duration_seconds:
        Wall-clock time of the adaptation call.
    extra:
        Free-form JSON-safe metadata (e.g. evaluation metrics added by a
        caller that holds labels).
    """

    target_id: str
    seed: int
    n_samples: int
    n_confident: int
    n_uncertain: int
    threshold: float
    mean_uncertainty: float
    n_training_samples: int
    losses: list[float]
    stopped_epoch: int | None
    density_map_shape: list[int]
    duration_seconds: float
    scheme: str = "tasfar"
    extra: dict = field(default_factory=dict)

    @classmethod
    def from_result(
        cls,
        target_id: str,
        seed: int,
        result: AdaptationResult,
        duration_seconds: float,
    ) -> "AdaptationReport":
        """Condense an :class:`AdaptationResult` into a serializable report."""
        return cls(
            target_id=str(target_id),
            seed=int(seed),
            n_samples=len(result.target_prediction),
            n_confident=int(result.split.n_confident),
            n_uncertain=int(result.split.n_uncertain),
            threshold=float(result.split.threshold),
            mean_uncertainty=float(result.target_prediction.uncertainty.mean()),
            n_training_samples=int(result.n_training_samples),
            losses=[float(loss) for loss in result.losses],
            stopped_epoch=None if result.stopped_epoch is None else int(result.stopped_epoch),
            density_map_shape=[int(size) for size in result.density_map.shape],
            duration_seconds=float(duration_seconds),
        )

    @classmethod
    def from_outcome(
        cls,
        target_id: str,
        seed: int,
        outcome,
        n_samples: int,
        duration_seconds: float,
    ) -> "AdaptationReport":
        """Condense a :class:`~repro.engine.StrategyOutcome` into a report.

        TASFAR outcomes carry a full :class:`AdaptationResult` and keep the
        detailed split/density fields; other schemes report what every scheme
        has (losses, sample count, wall clock) with the split fields zeroed
        and their scheme diagnostics under ``extra["diagnostics"]``.
        """
        if outcome.result is not None:
            report = cls.from_result(target_id, seed, outcome.result, duration_seconds)
            report.scheme = str(outcome.scheme)
            return report
        return cls(
            target_id=str(target_id),
            seed=int(seed),
            n_samples=int(n_samples),
            n_confident=0,
            n_uncertain=0,
            threshold=0.0,
            mean_uncertainty=0.0,
            n_training_samples=int(n_samples),
            losses=[float(loss) for loss in outcome.losses],
            stopped_epoch=None if outcome.stopped_epoch is None else int(outcome.stopped_epoch),
            density_map_shape=[],
            duration_seconds=float(duration_seconds),
            scheme=str(outcome.scheme),
            extra={"diagnostics": to_jsonable(dict(outcome.diagnostics))},
        )

    def to_dict(self) -> dict:
        """Plain-builtins dictionary form (safe for ``json.dumps``)."""
        return to_jsonable(asdict(self))

    @classmethod
    def from_dict(cls, payload: dict) -> "AdaptationReport":
        """Rebuild a report from :meth:`to_dict` output."""
        known = {name: payload[name] for name in cls.__dataclass_fields__ if name in payload}
        return cls(**known)

    def to_json(self, indent: int | None = None) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "AdaptationReport":
        """Deserialize from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))
