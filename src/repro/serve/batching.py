"""Cross-target micro-batched prediction.

A bursty multi-user load hands the gateway many small
:class:`~repro.serve.PredictRequest`\\ s at once, and most of them resolve to
the *same* model instance: every never-adapted (or evicted) target falls back
to the shard's shared source model, and a hot target's own bursts all hit its
cached adapted model.  Running those forwards one request at a time pays the
Python/numpy per-layer dispatch cost once per request and serializes on the
model's forward lock; this module coalesces them instead.

Coalescing happens in two tiers:

* **Dedup** — requests whose payloads are byte-identical (duplicate-target
  bursts: retries, replica fan-out, dashboard polling) are computed once and
  the result fanned out.  Bit-identical by construction — it *is* the same
  forward — whatever the platform.
* **Tiled stacking** — distinct sub-batch payloads for one model are packed,
  back to back, into fixed-shape tiles of exactly ``tile_rows`` rows (the
  last tile zero-padded) and each tile runs as one forward.  The fixed shape
  is the whole trick: a BLAS kernel picks its blocking from the gemm shape,
  so forwarding the *same row* in differently-sized batches can drift by an
  ulp — but inside a fixed ``(tile_rows, features)`` forward every output
  row depends only on its own input row, and repacking rows across tiles
  reproduces them bit for bit (pinned by ``tests/serve/test_gateway.py``).
  Because the gateway runs *single* predict requests through the very same
  tiled executor, a coalesced burst is **bit-identical to per-request
  submits by construction** — micro-batching only changes how many rows
  share a tile, never the arithmetic of any row.

Payloads at or above their request's ``batch_size`` gain nothing from tiling
(they already amortize dispatch) and run verbatim through
:func:`~repro.nn.trainer.predict_batched` — for those, the gateway's output
is bitwise the legacy :meth:`~repro.runtime.AdaptationService.predict`.  For
sub-batch payloads the tiled path may differ from that *legacy* path by
float rounding (the shape-dependence above, ~1 ulp); callers that need the
legacy bits exactly can serve with ``BatchPolicy(mode="dedup")``, which
coalesces duplicates only and keeps every forward request-shaped.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from ..nn.trainer import predict_batched
from ..obs.metrics import RATIO_BUCKETS as _OCCUPANCY_BUCKETS

__all__ = ["BatchPolicy", "PredictPlan", "run_model_group"]


@dataclass(frozen=True)
class BatchPolicy:
    """Knobs of the prediction micro-batcher.

    Attributes
    ----------
    mode:
        ``"stack"`` (dedup + fixed-shape tiled stacking, the default),
        ``"dedup"`` (only byte-identical payloads coalesce; every forward
        stays request-shaped, matching the legacy service path bit for
        bit), or ``"off"`` (plain per-request execution; the gateway then
        only saves the per-request lock round-trips).
    tile_rows:
        Rows per fixed-shape tile in ``"stack"`` mode.  Small enough that a
        lone request padded to one tile costs about as much as its own
        forward, large enough that a burst of one-row requests collapses
        into few forwards.
    """

    mode: str = "stack"
    tile_rows: int = 32

    def __post_init__(self) -> None:
        if self.mode not in ("stack", "dedup", "off"):
            raise ValueError(
                f"mode must be 'stack', 'dedup' or 'off', got {self.mode!r}"
            )
        if self.tile_rows < 1:
            raise ValueError("tile_rows must be at least 1")


@dataclass
class PredictPlan:
    """One prediction request resolved against its shard's model cache.

    Built by the gateway (which owns target→model resolution); consumed by
    :func:`run_model_group` grouped per ``(model, batch_size)``.
    """

    index: int  # position in the submit_many input order
    target_id: str
    inputs: np.ndarray
    batch_size: int
    fallback: bool  # source model substituted for a missing adapted model
    model: object = None  # resolved model instance the forward must run on
    lock: object = None  # that model's forward lock
    output: np.ndarray | None = None
    coalesced: bool = False  # answered by a shared (deduped/tiled) forward
    error: BaseException | None = None  # forward failure, attributed per plan


def _payload_key(inputs: np.ndarray) -> tuple:
    """Hashable identity of a payload's bytes (dedup key).

    Hashing is ~GB/s while a forward is orders of magnitude slower, so
    digesting every payload costs noise compared to the forwards it saves.
    """
    data = np.ascontiguousarray(inputs)
    digest = hashlib.blake2b(data.tobytes(), digest_size=16).digest()
    return (data.shape, digest)


def run_model_group(
    model,
    lock,
    plans: list[PredictPlan],
    policy: BatchPolicy,
    metrics=None,
    tally=None,
    occupancies=None,
) -> None:
    """Execute all plans that resolved to one model instance, coalescing them.

    Fills each plan's ``output`` in place.  The model's forward lock is taken
    once for the whole group (layers cache per-forward state, so a model
    instance must never forward from two threads at once).

    The gateway routes *single* predict requests through here too, so the
    per-request and micro-batched executions are one code path — which is
    what makes their outputs bit-identical rather than merely close.

    ``metrics`` (an optional :class:`~repro.obs.MetricsRegistry`) receives
    the coalescing accounting: plan counts, dedup savings, solo-vs-tiled
    forwards, and tile occupancy / zero-pad waste.  Callers executing many
    model groups per burst pass shared ``tally``/``occupancies`` lists
    instead and settle them with the registry once — per-group settlement
    was a measurable slice of the ≤2% observability overhead budget.
    """
    if not plans:
        return
    settle = tally is None
    if settle:
        tally, occupancies = [], []
    tally.append(("batch.plans", len(plans)))
    if policy.mode == "off":
        with lock:
            for plan in plans:
                plan.output = predict_batched(model, plan.inputs, plan.batch_size)
        tally.append(("batch.solo_forwards", len(plans)))
        if settle and metrics is not None:
            metrics.counter_many(tally)
        return

    # Tier 1 — dedup: one representative per byte-identical payload.
    unique: dict[tuple, list[PredictPlan]] = {}
    for plan in plans:
        unique.setdefault(_payload_key(plan.inputs), []).append(plan)

    # Tier 2 — tiling: representatives below their batch_size share
    # fixed-shape tiles; bigger payloads run verbatim (their per-request
    # chunking already amortizes dispatch, and staying on the legacy path
    # keeps them bitwise equal to AdaptationService.predict).
    solo: list[PredictPlan] = []
    tiled: dict[tuple, list[PredictPlan]] = {}
    for group in unique.values():
        representative = group[0]
        if policy.mode == "stack" and len(representative.inputs) < representative.batch_size:
            key = representative.inputs.shape[1:]
            tiled.setdefault(key, []).append(representative)
        else:
            solo.append(representative)

    dedup_hits = len(plans) - len(unique)
    if dedup_hits:
        tally.append(("batch.dedup_hits", dedup_hits))
    if solo:
        tally.append(("batch.solo_forwards", len(solo)))

    with lock:
        for plan in solo:
            plan.output = predict_batched(model, plan.inputs, plan.batch_size)
        for feature_shape, members in tiled.items():
            _run_tiled(
                model, feature_shape, members, policy.tile_rows, tally, occupancies
            )
    if settle and metrics is not None:
        metrics.counter_many(tally)
        metrics.observe_many(
            "batch.tile_occupancy", occupancies, buckets=_OCCUPANCY_BUCKETS
        )

    # Fan results out to the deduped duplicates.
    for group in unique.values():
        representative = group[0]
        if len(group) > 1:
            representative.coalesced = True
        for duplicate in group[1:]:
            duplicate.output = representative.output
            duplicate.coalesced = True


def _run_tiled(
    model,
    feature_shape: tuple,
    members: list[PredictPlan],
    tile_rows: int,
    tally: list | None = None,
    occupancies: list | None = None,
) -> None:
    """Pack payload rows into fixed ``(tile_rows, ...)`` forwards and scatter back.

    Rows are laid out back to back across tiles with no per-payload
    alignment; the final tile is zero-padded up to the fixed shape.  Every
    forward therefore has the exact same shape, which is what pins each
    row's bits independently of how many requests shared the tile.

    Accounting lands in the caller's ``tally``/``occupancies`` lists (the
    caller settles them with the registry in bulk, outside the model lock).
    """
    total_rows = sum(len(plan.inputs) for plan in members)
    n_tiles = -(-total_rows // tile_rows)
    if tally is not None:
        tally.append(("batch.tiles", n_tiles))
        tally.append(("batch.tile_rows", total_rows))
        tally.append(("batch.tile_padding_rows", n_tiles * tile_rows - total_rows))
    if occupancies is not None:
        occupancies.append(total_rows / (n_tiles * tile_rows))
    stacked = np.zeros((n_tiles * tile_rows,) + feature_shape, dtype=np.float64)
    start = 0
    for plan in members:
        stacked[start : start + len(plan.inputs)] = plan.inputs
        start += len(plan.inputs)
    outputs = [
        model_forward_eval(model, stacked[offset : offset + tile_rows])
        for offset in range(0, len(stacked), tile_rows)
    ]
    flat = np.concatenate(outputs, axis=0)
    shared = len(members) > 1
    start = 0
    for plan in members:
        plan.output = flat[start : start + len(plan.inputs)].copy()
        plan.coalesced = plan.coalesced or shared
        start += len(plan.inputs)


def model_forward_eval(model, inputs: np.ndarray) -> np.ndarray:
    """One deterministic forward in evaluation mode (dropout disabled)."""
    model.eval()
    return model.forward(inputs)
