"""Typed request/response protocol of the serving gateway.

Every interaction with the :class:`~repro.serve.Gateway` is one of five
request types — :class:`AdaptRequest`, :class:`PredictRequest`,
:class:`StreamRequest`, :class:`ReportRequest`, :class:`MetricsRequest` —
and every answer is an
:class:`Envelope`: a versioned, JSON-serializable record carrying either a
kind-specific ``payload`` or a structured ``error``, never an exception.

The wire form is deliberately boring: one JSON object per request with a
``kind`` discriminator, one JSON object per envelope.  :func:`decode_request`
/ :func:`encode_request` and :meth:`Envelope.to_dict` /
:meth:`Envelope.from_dict` are the only codec; the ``repro serve`` JSON-lines
front door (:mod:`repro.serve.loop`) is a thin loop over them.

Schema versioning
-----------------
Every envelope stamps :data:`SCHEMA` (currently ``"repro.serve/v1"``).
Additive payload fields do not bump the version; renaming or removing a
field, or changing a field's meaning, does.  Clients should dispatch on the
``schema`` field rather than assume the latest shape.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from ..runtime.serialization import to_jsonable
from ..runtime.service import canonical_target_id

__all__ = [
    "SCHEMA",
    "AdaptRequest",
    "PredictRequest",
    "StreamRequest",
    "ReportRequest",
    "MetricsRequest",
    "Request",
    "Envelope",
    "decode_request",
    "encode_request",
]

#: Wire-schema version stamped on every envelope.
SCHEMA = "repro.serve/v1"


def _as_inputs(values: object, name: str) -> np.ndarray:
    """Coerce a request's sample block to the float64 array the models eat."""
    array = np.asarray(values, dtype=np.float64)
    if array.ndim < 2 or len(array) == 0:
        raise ValueError(
            f"{name} must be a non-empty array of shape (n_samples, ...features), "
            f"got shape {array.shape}"
        )
    return array


@dataclass(frozen=True)
class AdaptRequest:
    """Adapt the source model to one target domain.

    Attributes
    ----------
    target_id:
        Target identifier; coerced to its canonical string form, so ``7``
        and ``"7"`` address the same target.
    inputs:
        The target's unlabeled adaptation samples.
    seed:
        Optional explicit seed; defaults to the service's deterministic
        per-target seed.
    """

    target_id: str
    inputs: np.ndarray
    seed: int | None = None

    kind = "adapt"

    def __post_init__(self) -> None:
        object.__setattr__(self, "target_id", canonical_target_id(self.target_id))
        object.__setattr__(self, "inputs", _as_inputs(self.inputs, "inputs"))


@dataclass(frozen=True)
class PredictRequest:
    """Predict with a target's adapted model (source fallback if unknown).

    Attributes
    ----------
    target_id:
        Target identifier (canonicalized like :class:`AdaptRequest`).
    inputs:
        Samples to predict.
    batch_size:
        Forward chunk size; requests with equal ``batch_size`` hitting the
        same model instance are candidates for micro-batching.
    strict:
        Refuse the silent source-model fallback: a missing adapted model
        produces an error envelope instead of source predictions.
    """

    target_id: str
    inputs: np.ndarray
    batch_size: int = 256
    strict: bool = False

    kind = "predict"

    def __post_init__(self) -> None:
        object.__setattr__(self, "target_id", canonical_target_id(self.target_id))
        object.__setattr__(self, "inputs", _as_inputs(self.inputs, "inputs"))
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be at least 1, got {self.batch_size}")


@dataclass(frozen=True)
class StreamRequest:
    """Fold one batch of a target's event stream into the streaming service."""

    target_id: str
    batch: np.ndarray

    kind = "stream"

    def __post_init__(self) -> None:
        object.__setattr__(self, "target_id", canonical_target_id(self.target_id))
        object.__setattr__(self, "batch", _as_inputs(self.batch, "batch"))


@dataclass(frozen=True)
class ReportRequest:
    """Fetch the adaptation report (and stream stats) for one target, or all.

    ``target_id=None`` asks for every stored report, fleet-wide.
    """

    target_id: str | None = None

    kind = "report"

    def __post_init__(self) -> None:
        if self.target_id is not None:
            object.__setattr__(self, "target_id", canonical_target_id(self.target_id))


@dataclass(frozen=True)
class MetricsRequest:
    """Fetch the gateway's merged metrics snapshot (``repro.metrics/v1``).

    ``target_id=None`` (the default and the common case) returns the
    fleet-wide snapshot: the gateway's own registry plus every shard's,
    shard entries labeled with their shard index.  A specific ``target_id``
    narrows to the shard *serving that target* — useful for spotting one
    hot shard — still merged with the gateway-level registry.

    Added additively to ``repro.serve/v1``: a new request kind plus a new
    success-payload shape (``{"metrics": <snapshot>}``), no change to any
    existing envelope field.
    """

    target_id: str | None = None

    kind = "metrics"

    def __post_init__(self) -> None:
        if self.target_id is not None:
            object.__setattr__(self, "target_id", canonical_target_id(self.target_id))


Request = AdaptRequest | PredictRequest | StreamRequest | ReportRequest | MetricsRequest

_REQUEST_TYPES: dict[str, type] = {
    cls.kind: cls
    for cls in (AdaptRequest, PredictRequest, StreamRequest, ReportRequest, MetricsRequest)
}


@dataclass
class Envelope:
    """Versioned response wrapper returned for every submitted request.

    Attributes
    ----------
    ok:
        Whether the request succeeded.  Errors are data, not exceptions:
        a failed request yields ``ok=False`` with ``error`` filled in.
    kind:
        The request kind this envelope answers (``adapt`` / ``predict`` /
        ``stream`` / ``report``).
    target_id:
        Canonical target id, or ``None`` for fleet-wide answers.
    payload:
        Kind-specific result — e.g. ``{"prediction": ..., "model":
        "adapted"|"source", "coalesced": bool}`` for predicts, ``{"report":
        ...}`` for adapts.  In-process the payload may hold numpy arrays;
        the wire form (:meth:`to_dict`/:meth:`to_json`) converts them.
    error:
        ``{"type": ..., "message": ...}`` when ``ok`` is false.
    duration_seconds:
        Wall-clock cost of handling the request.  Requests answered by one
        coalesced forward share their group's wall clock.
    schema:
        Wire-schema version (see module docstring).
    """

    ok: bool
    kind: str
    target_id: str | None = None
    payload: dict | None = None
    error: dict | None = None
    duration_seconds: float = 0.0
    schema: str = SCHEMA

    @classmethod
    def success(
        cls,
        kind: str,
        target_id: str | None,
        payload: dict,
        duration_seconds: float = 0.0,
    ) -> "Envelope":
        return cls(
            ok=True,
            kind=kind,
            target_id=target_id,
            payload=payload,
            duration_seconds=duration_seconds,
        )

    @classmethod
    def failure(
        cls,
        kind: str,
        target_id: str | None,
        exception: BaseException,
        duration_seconds: float = 0.0,
    ) -> "Envelope":
        return cls(
            ok=False,
            kind=kind,
            target_id=target_id,
            error={"type": type(exception).__name__, "message": str(exception)},
            duration_seconds=duration_seconds,
        )

    def to_dict(self) -> dict:
        """Plain-builtins wire form (safe for ``json.dumps``)."""
        return {
            "schema": self.schema,
            "ok": bool(self.ok),
            "kind": self.kind,
            "target_id": self.target_id,
            "payload": to_jsonable(self.payload),
            "error": to_jsonable(self.error),
            "duration_seconds": float(self.duration_seconds),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Envelope":
        """Rebuild an envelope from :meth:`to_dict` output.

        Anything that is not a well-formed envelope dictionary — wrong
        top-level type, missing ``ok``/``kind``, mistyped fields — raises
        :class:`ValueError`.  That is the *only* decode error: feeding this
        codec junk must fail predictably, never with an incidental
        ``KeyError``/``TypeError`` from deep inside the parser.
        """
        if not isinstance(payload, Mapping):
            raise ValueError(
                f"envelope must be a JSON object, got {type(payload).__name__}"
            )
        try:
            ok = payload["ok"]
            kind = payload["kind"]
        except KeyError as exc:
            raise ValueError(f"envelope is missing required field {exc.args[0]!r}") from exc
        if not isinstance(ok, bool):
            raise ValueError(f"envelope 'ok' must be a boolean, got {type(ok).__name__}")
        if not isinstance(kind, str):
            raise ValueError(f"envelope 'kind' must be a string, got {type(kind).__name__}")
        target_id = payload.get("target_id")
        if target_id is not None and not isinstance(target_id, str):
            raise ValueError(
                f"envelope 'target_id' must be a string or null, got {type(target_id).__name__}"
            )
        body: dict[str, Any] = {}
        for name in ("payload", "error"):
            value = payload.get(name)
            if value is not None and not isinstance(value, Mapping):
                raise ValueError(
                    f"envelope {name!r} must be an object or null, got {type(value).__name__}"
                )
            body[name] = None if value is None else dict(value)
        duration = payload.get("duration_seconds", 0.0)
        if isinstance(duration, bool) or not isinstance(duration, (int, float)):
            raise ValueError(
                f"envelope 'duration_seconds' must be a number, got {type(duration).__name__}"
            )
        schema = payload.get("schema", SCHEMA)
        if not isinstance(schema, str):
            raise ValueError(
                f"envelope 'schema' must be a string, got {type(schema).__name__}"
            )
        return cls(
            ok=ok,
            kind=kind,
            target_id=target_id,
            payload=body["payload"],
            error=body["error"],
            duration_seconds=float(duration),
            schema=schema,
        )

    def to_json(self) -> str:
        """Serialize to one JSON line."""
        return json.dumps(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "Envelope":
        """Deserialize from :meth:`to_json` output.

        Raises :class:`ValueError` — and only :class:`ValueError` — for any
        input that is not a serialized envelope (note that
        :class:`json.JSONDecodeError` *is* a ``ValueError``).
        """
        return cls.from_dict(json.loads(text))


def decode_request(payload: Mapping[str, Any]) -> Request:
    """Build a typed request from its wire dictionary.

    The ``kind`` field selects the request type; the remaining fields are
    the dataclass fields (sample blocks as nested lists).  Unknown kinds and
    unknown fields raise :class:`ValueError` so malformed requests fail
    loudly at the boundary, not deep inside a service.
    """
    if not isinstance(payload, Mapping):
        raise ValueError(f"request must be a JSON object, got {type(payload).__name__}")
    data = dict(payload)
    kind = data.pop("kind", None)
    if not isinstance(kind, str):
        raise ValueError(
            f"request kind must be a string, got {type(kind).__name__}; "
            f"expected one of {sorted(_REQUEST_TYPES)}"
        )
    request_type = _REQUEST_TYPES.get(kind)
    if request_type is None:
        raise ValueError(
            f"unknown request kind {kind!r}; expected one of {sorted(_REQUEST_TYPES)}"
        )
    known = set(request_type.__dataclass_fields__)
    unknown = {str(name) for name in data} - known
    if unknown:
        raise ValueError(
            f"unknown field(s) {sorted(unknown)} for {kind!r} request; "
            f"expected a subset of {sorted(known)}"
        )
    try:
        return request_type(**data)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"invalid {kind!r} request: {exc}") from exc


def encode_request(request: Request) -> dict:
    """The wire dictionary for a typed request (inverse of :func:`decode_request`)."""
    data: dict[str, Any] = {"kind": request.kind}
    for name in request.__dataclass_fields__:
        data[name] = to_jsonable(getattr(request, name))
    return data
