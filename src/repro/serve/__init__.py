"""The serving gateway: one typed front door over the adaptation runtime.

This package is the client-facing API of the reproduction's serving story:

* :mod:`repro.serve.protocol` — the typed request types
  (:class:`AdaptRequest`, :class:`PredictRequest`, :class:`StreamRequest`,
  :class:`ReportRequest`, :class:`MetricsRequest`), the versioned
  :class:`Envelope` response, and the stable JSON wire codec behind them;
* :mod:`repro.serve.gateway` — the :class:`Gateway` facade: constructed
  from registry names (task + scheme) or explicit objects, owning sharded
  adaptation services with deterministic rendezvous placement and
  per-shard worker pools, serving everything through ``submit`` /
  ``submit_many`` / ``submit_async``;
* :mod:`repro.serve.batching` — cross-target micro-batched prediction:
  concurrent predicts that share a model instance are deduped and stacked
  into coalesced forwards, bit-identical to per-request predicts;
* :mod:`repro.serve.loop` — the JSON-lines request loop behind
  ``python -m repro.cli serve``.

See ``examples/gateway_serving.py`` for an end-to-end walkthrough and the
README's "Serving" section for the wire schema.
"""

from .batching import BatchPolicy
from .gateway import Gateway, ShardRestartedError
from .loop import Session, decode_line, serve_lines, serve_loop
from .protocol import (
    SCHEMA,
    AdaptRequest,
    Envelope,
    MetricsRequest,
    PredictRequest,
    ReportRequest,
    Request,
    StreamRequest,
    decode_request,
    encode_request,
)

__all__ = [
    "SCHEMA",
    "AdaptRequest",
    "BatchPolicy",
    "Envelope",
    "Gateway",
    "MetricsRequest",
    "PredictRequest",
    "ReportRequest",
    "Request",
    "Session",
    "ShardRestartedError",
    "StreamRequest",
    "decode_line",
    "decode_request",
    "encode_request",
    "serve_lines",
    "serve_loop",
]
