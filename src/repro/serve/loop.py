"""JSON-lines request handling: the transport-agnostic session core.

One request per input line, one envelope per output line — the whole system
becomes drivable from outside Python with nothing but a pipe::

    $ printf '%s\n' \
        '{"kind": "adapt", "target_id": "u1", "inputs": [[0.1, 0.2], [0.3, 0.4]]}' \
        '{"kind": "predict", "target_id": "u1", "inputs": [[0.1, 0.2]]}' \
      | python -m repro.cli serve --task housing --scale tiny

Malformed lines (bad JSON, unknown kinds, invalid fields) are answered with
error envelopes and the loop keeps going; EOF ends it.  Blank lines are
skipped so hand-written scripts can breathe.

The same discipline holds *after* decoding: a request the gateway cannot
serve — an unknown target under ``strict``, a registry lookup that raises
``KeyError``, a shard pool that died mid-flight — is answered with a typed
error envelope of the request's kind.  No exception, whatever its source,
ever escapes the loop and takes the remaining queued requests down with it.

:class:`Session` is that discipline as a reusable object, shared by every
transport: the stdio loop below feeds it lines, the socket server
(:mod:`repro.net.server`) feeds it decoded requests and request bursts.
Whatever carried the bytes, the answers are identical.  :func:`decode_line`
remains the decode boundary as a plain function; the workload simulator
(:mod:`repro.sim`) feeds its fault-injected traces through it so simulated
traffic exercises exactly the production codec.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Sequence

from .gateway import Gateway
from .protocol import Envelope, Request, decode_request

__all__ = ["Session", "decode_line", "serve_lines", "serve_loop"]


def decode_line(line: str) -> tuple[Request | None, Envelope | None]:
    """Decode one wire line into ``(request, None)`` or ``(None, error_envelope)``.

    Blank lines return ``(None, None)``.  Decoding failures never raise:
    they come back as an error envelope of kind ``"invalid"`` so one garbled
    client line cannot take a serving loop down.
    """
    line = line.strip()
    if not line:
        return None, None
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        return None, Envelope.failure("invalid", None, exc)
    try:
        return decode_request(payload), None
    except Exception as exc:
        # decode_request raises ValueError for everything it foresees;
        # catching broadly keeps an unforeseen malformation from taking
        # the whole loop (and every queued client request) down.
        target = payload.get("target_id") if isinstance(payload, dict) else None
        return None, Envelope.failure(
            "invalid", target if isinstance(target, str) else None, exc
        )


class Session:
    """One client's gateway session, independent of what carries the bytes.

    The envelope discipline in object form: decoding failures *and*
    submission failures come back as error envelopes, never exceptions, so
    a transport can drive the gateway without wrapping every call.  Both
    the stdio loop and the socket server delegate here, which is what makes
    their answers byte-identical for identical input.
    """

    __slots__ = ("gateway", "served")

    def __init__(self, gateway: Gateway) -> None:
        self.gateway = gateway
        #: Envelopes this session has produced (all transports count alike).
        self.served = 0

    def handle_line(self, line: str) -> Envelope | None:
        """Answer one wire line; ``None`` for blank lines (nothing to say)."""
        request, error = decode_line(line)
        if request is None:
            if error is not None:
                self.served += 1
            return error
        return self.handle_requests([request])[0]

    def handle_requests(self, requests: Sequence[Request]) -> list[Envelope]:
        """Answer a burst of decoded requests through one gateway submission.

        A single request goes through :meth:`~Gateway.submit`, a burst
        through :meth:`~Gateway.submit_many` — the same calls in-process
        callers make, so micro-batched prediction and stacked training see
        socket bursts exactly as they see local ones.  Anything that
        escapes the gateway itself resolves to error envelopes for the
        whole burst (the per-request errors are already data).
        """
        if not requests:
            return []
        try:
            if len(requests) == 1:
                envelopes = [self.gateway.submit(requests[0])]
            else:
                envelopes = self.gateway.submit_many(requests)
        except Exception as exc:
            envelopes = [
                Envelope.failure(request.kind, request.target_id, exc)
                for request in requests
            ]
        self.served += len(envelopes)
        return envelopes


def serve_lines(gateway: Gateway, lines: Iterable[str]) -> Iterable[Envelope]:
    """Decode each JSON line into a request, submit it, yield the envelope.

    Neither decoding nor submission failures ever raise — see
    :class:`Session`, which this generator wraps for iterator-style callers.
    """
    session = Session(gateway)
    for line in lines:
        envelope = session.handle_line(line)
        if envelope is not None:
            yield envelope


def serve_loop(
    gateway: Gateway,
    stdin: IO[str],
    stdout: IO[str],
    shutdown=None,
) -> int:
    """Run the request loop over text streams; returns the envelope count.

    Envelopes are flushed per line so an interactive client (or a pipe with
    a slow producer) sees each answer as soon as it exists.

    A client hanging up mid-stream (``head -n 2``, a dead downstream pipe,
    a closed socket wrapper) surfaces here as ``BrokenPipeError`` — or
    ``ValueError`` from writing a stream something else already closed.
    Both mean the same thing: nobody is reading anymore.  The loop stops
    cleanly and returns the count actually delivered, instead of letting
    the exception tear through ``repro serve`` as a traceback.

    ``shutdown`` (a :class:`repro.net.GracefulShutdown`, when given) makes
    SIGINT/SIGTERM drain instead of kill: a signal arriving while the loop
    waits for input interrupts the wait; one arriving while a request is
    in flight lets that request finish and its envelope flush, then stops
    the loop before the next read.  Either way the caller gets a normal
    return, not an exception — flushing and pool teardown proceed as usual.
    """
    from contextlib import nullcontext

    from ..net.shutdown import ShutdownRequested

    session = Session(gateway)
    reader = iter(stdin)
    while True:
        if shutdown is not None and shutdown.requested:
            break
        try:
            with shutdown.reading() if shutdown is not None else nullcontext():
                line = next(reader, None)
        except ShutdownRequested:
            break
        if line is None:
            break
        envelope = session.handle_line(line)
        if envelope is None:
            continue
        try:
            stdout.write(envelope.to_json() + "\n")
            stdout.flush()
        except BrokenPipeError:
            session.served -= 1
            break
        except ValueError:
            # Text wrappers raise ValueError("I/O operation on closed file")
            # rather than BrokenPipeError once the underlying stream is gone.
            if not stdout.closed:
                raise
            session.served -= 1
            break
    return session.served
