"""JSON-lines request loop: the ``repro serve`` front door.

One request per input line, one envelope per output line — the whole system
becomes drivable from outside Python with nothing but a pipe::

    $ printf '%s\n' \
        '{"kind": "adapt", "target_id": "u1", "inputs": [[0.1, 0.2], [0.3, 0.4]]}' \
        '{"kind": "predict", "target_id": "u1", "inputs": [[0.1, 0.2]]}' \
      | python -m repro.cli serve --task housing --scale tiny

Malformed lines (bad JSON, unknown kinds, invalid fields) are answered with
error envelopes and the loop keeps going; EOF ends it.  Blank lines are
skipped so hand-written scripts can breathe.
"""

from __future__ import annotations

import json
from typing import IO, Iterable

from .gateway import Gateway
from .protocol import Envelope, decode_request

__all__ = ["serve_lines", "serve_loop"]


def serve_lines(gateway: Gateway, lines: Iterable[str]) -> Iterable[Envelope]:
    """Decode each JSON line into a request, submit it, yield the envelope.

    Decoding failures never raise: they yield an error envelope of kind
    ``"invalid"`` so one garbled client line cannot take the loop down.
    """
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            yield Envelope.failure("invalid", None, exc)
            continue
        try:
            request = decode_request(payload)
        except Exception as exc:
            # decode_request raises ValueError for everything it foresees;
            # catching broadly keeps an unforeseen malformation from taking
            # the whole loop (and every queued client request) down.
            target = payload.get("target_id") if isinstance(payload, dict) else None
            yield Envelope.failure(
                "invalid", target if isinstance(target, str) else None, exc
            )
            continue
        yield gateway.submit(request)


def serve_loop(gateway: Gateway, stdin: IO[str], stdout: IO[str]) -> int:
    """Run the request loop over text streams; returns the envelope count.

    Envelopes are flushed per line so an interactive client (or a pipe with
    a slow producer) sees each answer as soon as it exists.
    """
    served = 0
    for envelope in serve_lines(gateway, stdin):
        stdout.write(envelope.to_json() + "\n")
        stdout.flush()
        served += 1
    return served
