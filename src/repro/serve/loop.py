"""JSON-lines request loop: the ``repro serve`` front door.

One request per input line, one envelope per output line — the whole system
becomes drivable from outside Python with nothing but a pipe::

    $ printf '%s\n' \
        '{"kind": "adapt", "target_id": "u1", "inputs": [[0.1, 0.2], [0.3, 0.4]]}' \
        '{"kind": "predict", "target_id": "u1", "inputs": [[0.1, 0.2]]}' \
      | python -m repro.cli serve --task housing --scale tiny

Malformed lines (bad JSON, unknown kinds, invalid fields) are answered with
error envelopes and the loop keeps going; EOF ends it.  Blank lines are
skipped so hand-written scripts can breathe.

The same discipline holds *after* decoding: a request the gateway cannot
serve — an unknown target under ``strict``, a registry lookup that raises
``KeyError``, a shard pool that died mid-flight — is answered with a typed
error envelope of the request's kind.  No exception, whatever its source,
ever escapes the loop and takes the remaining queued requests down with it.

:func:`decode_line` is the loop's decode boundary as a reusable function;
the workload simulator (:mod:`repro.sim`) feeds its fault-injected traces
through it so simulated traffic exercises exactly the production codec.
"""

from __future__ import annotations

import json
from typing import IO, Iterable

from .gateway import Gateway
from .protocol import Envelope, Request, decode_request

__all__ = ["decode_line", "serve_lines", "serve_loop"]


def decode_line(line: str) -> tuple[Request | None, Envelope | None]:
    """Decode one wire line into ``(request, None)`` or ``(None, error_envelope)``.

    Blank lines return ``(None, None)``.  Decoding failures never raise:
    they come back as an error envelope of kind ``"invalid"`` so one garbled
    client line cannot take a serving loop down.
    """
    line = line.strip()
    if not line:
        return None, None
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        return None, Envelope.failure("invalid", None, exc)
    try:
        return decode_request(payload), None
    except Exception as exc:
        # decode_request raises ValueError for everything it foresees;
        # catching broadly keeps an unforeseen malformation from taking
        # the whole loop (and every queued client request) down.
        target = payload.get("target_id") if isinstance(payload, dict) else None
        return None, Envelope.failure(
            "invalid", target if isinstance(target, str) else None, exc
        )


def serve_lines(gateway: Gateway, lines: Iterable[str]) -> Iterable[Envelope]:
    """Decode each JSON line into a request, submit it, yield the envelope.

    Neither decoding nor submission failures ever raise.  The gateway
    already answers per-request errors (unknown targets, bad payloads) as
    data; this loop additionally absorbs anything that escapes ``submit``
    itself — a registry ``KeyError``, a pool shut down underneath us — into
    an error envelope of the request's kind, so the loop survives every
    fault its clients or its backends can throw at it.
    """
    for line in lines:
        request, error = decode_line(line)
        if request is None:
            if error is not None:
                yield error
            continue
        try:
            yield gateway.submit(request)
        except Exception as exc:
            yield Envelope.failure(request.kind, request.target_id, exc)


def serve_loop(gateway: Gateway, stdin: IO[str], stdout: IO[str]) -> int:
    """Run the request loop over text streams; returns the envelope count.

    Envelopes are flushed per line so an interactive client (or a pipe with
    a slow producer) sees each answer as soon as it exists.

    A client hanging up mid-stream (``head -n 2``, a dead downstream pipe,
    a closed socket wrapper) surfaces here as ``BrokenPipeError`` — or
    ``ValueError`` from writing a stream something else already closed.
    Both mean the same thing: nobody is reading anymore.  The loop stops
    cleanly and returns the count actually delivered, instead of letting
    the exception tear through ``repro serve`` as a traceback.
    """
    served = 0
    for envelope in serve_lines(gateway, stdin):
        try:
            stdout.write(envelope.to_json() + "\n")
            stdout.flush()
        except BrokenPipeError:
            break
        except ValueError:
            # Text wrappers raise ValueError("I/O operation on closed file")
            # rather than BrokenPipeError once the underlying stream is gone.
            if not stdout.closed:
                raise
            break
        served += 1
    return served
