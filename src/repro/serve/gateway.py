"""The serving gateway: one front door for adapt / predict / stream / report.

The runtime grew three disjoint client surfaces — the batch
:class:`~repro.runtime.AdaptationService`, the
:class:`~repro.streaming.StreamingAdaptationService`, and ad-hoc CLI
subcommands — each with its own kwargs and return shapes.  The
:class:`Gateway` composes them behind the typed request/response protocol of
:mod:`repro.serve.protocol`:

* it is constructed either from **names** (a task and a scheme, resolved
  through the task and strategy registries) or from **explicit objects**
  (a source model, calibration, strategy);
* it owns one or more service **shards**, each a
  :class:`StreamingAdaptationService` (or plain ``AdaptationService`` when
  no calibration is available) with its own worker pool; targets are placed
  on shards by deterministic highest-random-weight (rendezvous) hashing, so
  the same target lands on the same shard in every process — and growing
  the shard count only ever moves targets **to the new shards**, never
  reshuffles them among the old ones;
* every interaction goes through one ``submit()`` / ``submit_many()``
  surface (plus a future-returning ``submit_async``), and concurrent
  :class:`~repro.serve.PredictRequest`\\ s for targets sharing a model
  instance are answered by micro-batched forwards
  (:mod:`repro.serve.batching`) — bit-identical to submitting the same
  requests one at a time (single submits run through the same tiled
  executor), measurably faster under bursty load
  (``benchmarks/test_bench_serve.py``).

The pre-existing service constructors keep working untouched; the gateway is
a facade over them, not a replacement.
"""

from __future__ import annotations

import hashlib
import threading
from concurrent.futures import Future, InvalidStateError, ThreadPoolExecutor
from pathlib import Path
from typing import Callable, Iterable, Sequence

import numpy as np

from ..core.adapter import SourceCalibration
from ..core.config import TasfarConfig
from ..engine.strategy import AdaptationStrategy
from ..nn.losses import Loss
from ..nn.models import RegressionModel
from ..obs import RATIO_BUCKETS, MetricsRegistry, Tracer, now
from ..runtime.service import AdaptationService, canonical_target_id
from ..runtime.snapshots import SnapshotStore
from ..runtime.workers import EXECUTOR_KINDS
from ..streaming.service import StreamingAdaptationService
from .batching import BatchPolicy, PredictPlan, run_model_group
from .protocol import (
    AdaptRequest,
    Envelope,
    MetricsRequest,
    PredictRequest,
    ReportRequest,
    Request,
    StreamRequest,
)

__all__ = ["Gateway", "ShardRestartedError"]


class ShardRestartedError(RuntimeError):
    """A request was queued on a shard whose worker pool was killed.

    Delivered *as data* — inside the error envelope that resolves the
    request's future — never as a hang: :meth:`Gateway.restart_shard_workers`
    settles every orphaned future before it returns.  Adaptation is
    deterministic, so resubmitting the same request on the respawned pool
    reproduces the same result.
    """


def _placement_weight(target_id: str, shard: int) -> int:
    """Stable rendezvous weight of ``(target, shard)`` (process-independent)."""
    digest = hashlib.sha256(f"{target_id}\x00shard{shard}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def _settle(future: Future, result=None, exc: BaseException | None = None) -> None:
    """Resolve a future exactly once; later settlers lose quietly.

    The task thread and the restart path can race to settle the same outer
    future (a task finishing just as its pool is torn down); whichever
    arrives second must be a no-op, not a crash.
    """
    try:
        if exc is not None:
            future.set_exception(exc)
        else:
            future.set_result(result)
    except InvalidStateError:
        pass


class _ShardDispatch:
    """One shard's dispatch pool, with no-orphan restart semantics.

    Callers never hold a raw executor future: :meth:`submit` returns an
    *outer* future that this class guarantees to settle — with the task's
    result, with the task's exception, or (when :meth:`restart` kills the
    pool while the task is still queued) with the caller-provided
    ``orphan_result``.  That last leg is the fix for the hang the old code
    had: ``ThreadPoolExecutor.shutdown`` simply abandons queued work, and a
    caller blocked on ``future.result()`` would wait forever.

    Tasks already *running* at restart time are not interruptible (threads
    cannot be killed); they settle their outer future when they finish.
    Under the process executor that is prompt — the worker processes
    underneath them are killed, so the blocked task raises immediately and
    the outer future resolves to an error envelope.
    """

    def __init__(self, index: int, workers: int, metrics: MetricsRegistry) -> None:
        self.index = index
        self.workers = workers
        self.metrics = metrics
        self._shard_label = str(index)
        self._lock = threading.Lock()
        # inner executor future -> (outer caller future, orphan_result)
        self._pending: dict[Future, tuple[Future, Callable[[], object]]] = {}
        self._pool = self._new_pool()

    def _new_pool(self) -> ThreadPoolExecutor:
        return ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix=f"gateway-shard-{self.index}"
        )

    def submit(
        self,
        fn: Callable,
        args: tuple,
        orphan_result: Callable[[], object],
        on_start: Callable[[], None] | None = None,
    ) -> Future:
        """Queue ``fn(*args)``; the returned future always settles.

        ``orphan_result`` is called (lazily, only if needed) to produce the
        value the future resolves to when the task is thrown away by a
        restart before it ever ran.  ``on_start`` (if given) runs on the
        dispatch thread the moment the task leaves the queue — the tracer
        uses it to stamp dequeue times.  Raises ``RuntimeError`` if the pool
        is already shut down for good (gateway closed) — callers translate
        that into an immediate error envelope.
        """
        outer: Future = Future()
        enqueued = now()

        def task():
            # The queue-depth gauge decrements here (not in ``_reap``, whose
            # done-callback races the caller's wakeup) so depth reconciles
            # to zero the moment every submitted request has been answered.
            labels = {"shard": self._shard_label}
            self.metrics.bulk(
                gauge_deltas=(("serve.queue_depth", -1, labels),),
                observations=(
                    ("serve.queue_wait_seconds", now() - enqueued, 1, None, labels),
                ),
            )
            if on_start is not None:
                on_start()
            try:
                result = fn(*args)
            except BaseException as exc:  # settle, never lose the outer future
                _settle(outer, exc=exc)
            else:
                _settle(outer, result=result)

        with self._lock:
            pool = self._pool
        self.metrics.gauge_add("serve.queue_depth", 1, shard=self._shard_label)
        try:
            inner = pool.submit(task)
        except RuntimeError:
            self.metrics.gauge_add("serve.queue_depth", -1, shard=self._shard_label)
            raise
        with self._lock:
            self._pending[inner] = (outer, orphan_result)
        inner.add_done_callback(self._reap)
        return outer

    def _reap(self, inner: Future) -> None:
        with self._lock:
            entry = self._pending.pop(inner, None)
        if entry is None:
            return
        outer, orphan_result = entry
        if inner.cancelled():
            # Killed while still queued: the task never ran, so nothing else
            # will ever settle the outer future — resolve it with the
            # caller's orphan envelope.
            self.metrics.gauge_add("serve.queue_depth", -1, shard=self._shard_label)
            self.metrics.counter("serve.orphaned_futures", shard=self._shard_label)
            _settle(outer, result=orphan_result())

    def restart(self) -> None:
        """Swap in a fresh pool; queued tasks resolve to their orphan results.

        Non-draining by design (it models a crash, not a graceful stop):
        queued inner futures are cancelled, which triggers :meth:`_reap` and
        settles their outer futures with the orphan envelopes.
        """
        with self._lock:
            old = self._pool
            self._pool = self._new_pool()
        old.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        self._pool.shutdown(wait=True, cancel_futures=True)


class Gateway:
    """Route typed serving requests onto sharded adaptation services.

    Parameters
    ----------
    source_model:
        The trained source model shared by every shard (each shard's service
        keeps its own pristine deep copy, as before).
    calibration:
        TASFAR source calibration.  With a calibration the shards are
        :class:`~repro.streaming.StreamingAdaptationService` instances and
        :class:`~repro.serve.StreamRequest` is served; without one the
        shards are batch services and stream requests come back as error
        envelopes.
    config, loss, strategy:
        Forwarded to every shard service — the same strategy object is
        shared (strategies are stateless after ``prepare``).
    n_shards:
        Number of service shards.  Each shard has its own model cache,
        worker pool, and (for streaming) per-target stream state.
    shard_workers:
        Workers per shard pool: dispatch threads (``executor="thread"``) or
        worker processes plus the dispatch threads that feed them
        (``executor="process"``).
    executor:
        ``"thread"`` (default) keeps shard work on the dispatch threads —
        fine for prediction, GIL-bound for adaptation.  ``"process"``
        attaches a :class:`~repro.runtime.AdaptationWorkerPool` to every
        shard service: adaptations run in worker processes on real cores
        (source weights shipped once per worker at pool start), while
        prediction, stream bookkeeping, and reports stay in-process.
        Results are bit-identical across the two executors.
    max_cached_models:
        LRU capacity *per shard*.
    base_seed:
        Seeding base forwarded to every shard; per-target seeds depend only
        on ``(target_id, base_seed)``, so a fleet adapts bit-identically
        whatever the shard count.
    batch_policy:
        Micro-batching knobs (:class:`~repro.serve.batching.BatchPolicy`);
        the default stacks and dedups.
    train_batching:
        Stack size for cross-target batched *training*.  ``K > 1`` makes
        :meth:`submit_many` group the :class:`~repro.serve.AdaptRequest`\\ s
        of a burst per shard and run them as stacked fine-tunes of up to K
        targets (and routes grouped :class:`~repro.serve.StreamRequest`\\ s
        through the streaming service's stacked ``ingest_many``), with
        results bit-identical to per-request handling.  Composes with
        ``executor="process"``: each stack is one worker task.  Validated
        against the scheme and model at construction — incompatible
        combinations raise :class:`ValueError`, never fall back silently.
    service_options:
        Extra keyword arguments forwarded to every shard service
        constructor (e.g. ``min_adapt_events`` / ``readapt_budget`` for the
        streaming shards).
    snapshot_dir:
        Optional root directory for the tiered snapshot state.  Each shard
        gets its own :class:`~repro.runtime.SnapshotStore` under
        ``<snapshot_dir>/shard-<index>`` (shard placement is deterministic,
        so a target's snapshot always lives under its shard's store):
        evicted adapted models spill to disk and warm-resume on the next
        touch, across both executors — spills and resumes happen in the
        gateway process, so ``executor="process"`` changes nothing about
        what lands on disk.
    metrics:
        The gateway-level :class:`~repro.obs.MetricsRegistry` (a fresh one
        by default).  Holds the request/queue/batching counters; each shard
        service keeps its *own* registry, and :meth:`metrics_snapshot`
        merges them all (shard entries labeled by shard index).
    tracer:
        Optional :class:`~repro.obs.Tracer`; when given, every submitted
        request emits deterministic-id spans (submit → queue → handle →
        engine) into it.
    """

    def __init__(
        self,
        source_model: RegressionModel,
        calibration: SourceCalibration | None = None,
        config: TasfarConfig | None = None,
        loss: Loss | None = None,
        *,
        strategy: AdaptationStrategy | None = None,
        n_shards: int = 1,
        shard_workers: int = 4,
        executor: str = "thread",
        max_cached_models: int = 8,
        base_seed: int = 0,
        batch_policy: BatchPolicy | None = None,
        train_batching: int = 1,
        service_options: dict | None = None,
        snapshot_dir: str | None = None,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be at least 1")
        if shard_workers < 1:
            raise ValueError("shard_workers must be at least 1")
        if executor not in EXECUTOR_KINDS:
            raise ValueError(f"executor must be one of {EXECUTOR_KINDS}, got {executor!r}")
        self.executor = executor
        self.batch_policy = batch_policy if batch_policy is not None else BatchPolicy()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer
        self.snapshot_dir = None if snapshot_dir is None else str(snapshot_dir)
        options = dict(service_options or {})
        common = dict(
            config=config,
            loss=loss,
            strategy=strategy,
            max_cached_models=max_cached_models,
            base_seed=base_seed,
        )
        self.streaming = calibration is not None
        self._shards: list[AdaptationService] = []
        for index in range(n_shards):
            shard_kwargs = dict(common)
            if self.snapshot_dir is not None:
                # One store per shard under the shared root: rendezvous
                # placement is deterministic, so a target's snapshot is
                # always read back by the shard that wrote it.
                shard_kwargs["snapshot_store"] = SnapshotStore(
                    Path(self.snapshot_dir) / f"shard-{index}"
                )
            if self.streaming:
                service: AdaptationService = StreamingAdaptationService(
                    source_model, calibration, **shard_kwargs, **options
                )
            else:
                if options:
                    raise ValueError(
                        "service_options requires a calibration (streaming shards); "
                        f"got {sorted(options)} for batch shards"
                    )
                service = AdaptationService(source_model, calibration, **shard_kwargs)
            self._shards.append(service)
        self._shard_workers = shard_workers
        # Every shard shares the strategy and the source model, so one
        # shard's validation covers the fleet: fail at construction, not on
        # the first burst.
        self.train_batching = self._shards[0].check_train_batching(train_batching)
        if executor == "process":
            # Processes spawn eagerly, before any dispatch thread exists —
            # forking a threaded process is where the dragons live.
            for service in self._shards:
                service.use_process_workers(shard_workers)
        self._dispatch = [
            _ShardDispatch(index, shard_workers, self.metrics)
            for index in range(n_shards)
        ]

    def restart_shard_workers(self, shard: int) -> list[int]:
        """Kill one shard's worker pool and stand up a fresh one — no orphans.

        Models a worker crash followed by a supervisor respawn.  The shard's
        *service state* — cached models, stream buffers, reports — survives
        untouched; the in-flight work does not:

        * requests still **queued** on the shard never run; their futures
          resolve immediately to error envelopes carrying
          :class:`ShardRestartedError` (previously they were silently
          abandoned, and ``submit_async`` callers hung forever under the
          ``shard_crash`` fault plan);
        * requests already **running** keep their threads, and under
          ``executor="process"`` the worker *processes* beneath them are
          killed — the blocked call raises
          :class:`~repro.runtime.WorkerCrashError` and the caller gets an
          error envelope rather than a partial result.

        Used by the fault-injection harness (:mod:`repro.sim.faults`) and
        usable as an operational lever.  Returns the worker-process PIDs
        that were killed (empty under the thread executor).
        """
        if not 0 <= shard < self.n_shards:
            raise ValueError(f"shard must be in [0, {self.n_shards}), got {shard}")
        self.metrics.counter("serve.shard_restarts", shard=shard)
        self._dispatch[shard].restart()
        return self._shards[shard].restart_workers()

    # ------------------------------------------------------------------
    # Construction from registry names
    # ------------------------------------------------------------------
    @classmethod
    def from_task(
        cls,
        task: str,
        scheme: str = "tasfar",
        scale: str = "small",
        seed: int = 0,
        *,
        config: TasfarConfig | None = None,
        max_source_samples: int = 400,
        **kwargs,
    ) -> "Gateway":
        """Build a gateway from a task name and a scheme name.

        Resolves ``task`` through the :class:`~repro.data.TaskSpec` registry
        (building or fetching the cached bundle: data, trained source model,
        calibration) and ``scheme`` through the strategy registry, prepares
        the strategy on the bundle's source resources, and hands both to the
        regular constructor.  ``config`` overrides the default
        ``TasfarConfig(seed=seed)`` for both the strategy and the shard
        services (the simulator uses this to run short, deterministic
        adaptation schedules).  Remaining keyword arguments are constructor
        parameters (``n_shards``, ``batch_policy``, ``service_options``, ...).
        """
        from ..engine import create_strategy
        from ..experiments import get_bundle

        bundle = get_bundle(task, scale, seed)
        if config is None:
            config = TasfarConfig(seed=seed)
        strategy = create_strategy(
            scheme,
            config=config,
            epochs=bundle.scale.baseline_epochs,
            seed=seed,
        ).prepare(
            bundle.source_model,
            bundle.resources(max_source_samples=max_source_samples, seed=seed),
        )
        kwargs.setdefault("config", config)
        kwargs.setdefault("base_seed", seed)
        return cls(
            bundle.source_model,
            bundle.calibration,
            strategy=strategy,
            **kwargs,
        )

    # ------------------------------------------------------------------
    # Sharding
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self._shards)

    def shard_for(self, target_id: str) -> int:
        """Deterministic shard index for a target (rendezvous hashing).

        A pure function of ``(canonical target id, shard index)`` digests —
        independent of the process, the gateway instance, and insertion
        order.  Against a larger shard count, a target either keeps its
        shard or moves to one of the *new* shards; it never reshuffles among
        the surviving ones.
        """
        target_id = canonical_target_id(target_id)
        return max(
            range(self.n_shards), key=lambda shard: _placement_weight(target_id, shard)
        )

    def service_for(self, target_id: str) -> AdaptationService:
        """The shard service owning ``target_id``."""
        return self._shards[self.shard_for(target_id)]

    @property
    def shards(self) -> tuple[AdaptationService, ...]:
        """The shard services, by shard index (read-only view)."""
        return tuple(self._shards)

    # ------------------------------------------------------------------
    # Submission surface
    # ------------------------------------------------------------------
    def _dispatch_for(self, request: Request) -> "_ShardDispatch":
        if isinstance(request, (ReportRequest, MetricsRequest)) and request.target_id is None:
            return self._dispatch[0]
        return self._dispatch[self.shard_for(request.target_id)]

    def _count_envelope(self, envelope: Envelope) -> Envelope:
        """Fold one produced envelope into the request/error/latency metrics.

        Called at *every* envelope-producing point — handler returns, orphan
        envelopes, dead-pool and unknown-type fallbacks — so
        ``serve.requests{kind}`` equals the number of envelopes the gateway
        ever handed out (the ``metrics_accounting`` sim invariant leans on
        exactly this).
        """
        self.metrics.counter("serve.requests", kind=envelope.kind)
        if not envelope.ok:
            self.metrics.counter("serve.errors", kind=envelope.kind)
        self.metrics.observe(
            "serve.request_seconds", envelope.duration_seconds, kind=envelope.kind
        )
        return envelope

    def _orphan_envelope(self, request: Request) -> Callable[[], Envelope]:
        """The envelope a request's future resolves to if a restart orphans it."""

        def orphan() -> Envelope:
            return self._count_envelope(
                Envelope.failure(
                    request.kind,
                    request.target_id,
                    ShardRestartedError(
                        "the shard's worker pool was restarted while this request was "
                        "queued; it never ran — resubmit it (adaptation is "
                        "deterministic, so a retry reproduces the same result)"
                    ),
                )
            )

        return orphan

    def _begin_trace(self, request: Request):
        if self.tracer is None:
            return None
        kind = getattr(request, "kind", "unknown")
        return self.tracer.begin(kind, getattr(request, "target_id", None))

    def submit(self, request: Request) -> Envelope:
        """Handle one request synchronously and return its envelope."""
        return self.submit_many([request])[0]

    def submit_async(self, request: Request) -> "Future[Envelope]":
        """Handle one request on its shard's pool; returns a future envelope.

        The future *always* settles — with a success envelope, an error
        envelope, or (if :meth:`restart_shard_workers` kills the shard while
        the request is queued) an error envelope carrying
        :class:`ShardRestartedError`.  Single-request dispatch skips
        micro-batching (there is nothing to coalesce with); burst callers
        should prefer :meth:`submit_many`, which coalesces across the whole
        burst.
        """
        dispatch = self._dispatch_for(request)
        trace = self._begin_trace(request)
        try:
            future = dispatch.submit(
                self._handle_one,
                (request,),
                self._orphan_envelope(request),
                on_start=None if trace is None else trace.mark_dequeued,
            )
        except RuntimeError as exc:
            # Dead pool: same errors-as-data discipline as submit_many — the
            # caller gets a future that resolves to an error envelope, not a
            # synchronous crash.
            envelope = self._count_envelope(
                Envelope.failure(request.kind, request.target_id, exc)
            )
            if trace is not None:
                trace.finish(envelope)
            dead: "Future[Envelope]" = Future()
            dead.set_result(envelope)
            return dead
        if trace is not None:

            def finish_trace(settled: Future) -> None:
                try:
                    trace.finish(settled.result())
                except BaseException:
                    trace.finish(None)

            future.add_done_callback(finish_trace)
        return future

    def submit_many(self, requests: Sequence[Request] | Iterable[Request]) -> list[Envelope]:
        """Handle a batch of requests, micro-batching the predictions.

        Requests are partitioned per shard and handled on the shard pools;
        :class:`PredictRequest`\\ s that resolve to the same model instance
        (same shard, same ``batch_size``) are answered by coalesced forwards.
        Envelopes come back in the input order, errors as error envelopes —
        one bad request never poisons the batch.
        """
        requests = list(requests)
        envelopes: list[Envelope | None] = [None] * len(requests)
        traces = [self._begin_trace(request) for request in requests]
        predict_by_shard: dict[int, list[tuple[int, PredictRequest]]] = {}
        adapt_by_shard: dict[int, list[tuple[int, AdaptRequest]]] = {}
        stream_by_shard: dict[int, list[tuple[int, StreamRequest]]] = {}
        futures: list[tuple[int, Future]] = []
        for index, request in enumerate(requests):
            if isinstance(request, PredictRequest):
                shard = self.shard_for(request.target_id)
                predict_by_shard.setdefault(shard, []).append((index, request))
            elif self.train_batching > 1 and isinstance(
                request, (AdaptRequest, StreamRequest)
            ):
                # Stacked training: adapt/stream requests coalesce per shard
                # into grouped handlers that batch compatible fine-tunes.
                shard = self.shard_for(request.target_id)
                groups = (
                    adapt_by_shard
                    if isinstance(request, AdaptRequest)
                    else stream_by_shard
                )
                groups.setdefault(shard, []).append((index, request))
            elif isinstance(
                request, (AdaptRequest, StreamRequest, ReportRequest, MetricsRequest)
            ):
                dispatch = self._dispatch_for(request)
                trace = traces[index]
                try:
                    futures.append(
                        (
                            index,
                            dispatch.submit(
                                self._handle_one,
                                (request,),
                                self._orphan_envelope(request),
                                on_start=None if trace is None else trace.mark_dequeued,
                            ),
                        )
                    )
                except RuntimeError as exc:
                    # The pool died underneath us (shut down / interpreter
                    # teardown): answer with an error envelope rather than
                    # letting one dead shard poison the whole batch.
                    envelopes[index] = self._count_envelope(
                        Envelope.failure(request.kind, request.target_id, exc)
                    )
            else:
                envelopes[index] = self._count_envelope(
                    Envelope.failure(
                        "unknown",
                        None,
                        TypeError(f"unsupported request type {type(request).__name__}"),
                    )
                )
        group_futures = []
        grouped_dispatch = [
            (self._handle_predict_group, predict_by_shard),
            (self._handle_adapt_group, adapt_by_shard),
            (self._handle_stream_group, stream_by_shard),
        ]
        for handler, by_shard in grouped_dispatch:
            for shard, group in by_shard.items():
                group_traces = [traces[index] for index, _ in group]

                def orphan_group(group=group) -> list[tuple[int, Envelope]]:
                    return [
                        (index, self._orphan_envelope(request)())
                        for index, request in group
                    ]

                def mark_group_dequeued(group_traces=group_traces) -> None:
                    for trace in group_traces:
                        if trace is not None:
                            trace.mark_dequeued()

                try:
                    group_futures.append(
                        self._dispatch[shard].submit(
                            handler,
                            (shard, group),
                            orphan_group,
                            on_start=None if self.tracer is None else mark_group_dequeued,
                        )
                    )
                except RuntimeError as exc:
                    for index, request in group:
                        envelopes[index] = self._count_envelope(
                            Envelope.failure(request.kind, request.target_id, exc)
                        )
        for index, future in futures:
            envelopes[index] = future.result()
        for future in group_futures:
            for index, envelope in future.result():
                envelopes[index] = envelope
        assert all(envelope is not None for envelope in envelopes)
        for trace, envelope in zip(traces, envelopes):
            if trace is not None:
                trace.finish(envelope)
        return envelopes  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def _handle_one(self, request: Request) -> Envelope:
        start = now()
        try:
            if isinstance(request, AdaptRequest):
                payload = self._do_adapt(request)
            elif isinstance(request, PredictRequest):
                payload = self._do_predict(request)
            elif isinstance(request, StreamRequest):
                payload = self._do_stream(request)
            elif isinstance(request, ReportRequest):
                payload = self._do_report(request)
            elif isinstance(request, MetricsRequest):
                payload = self._do_metrics(request)
            else:  # pragma: no cover - submit_many filters these out
                raise TypeError(f"unsupported request type {type(request).__name__}")
        except Exception as exc:
            return self._count_envelope(
                Envelope.failure(request.kind, request.target_id, exc, now() - start)
            )
        return self._count_envelope(
            Envelope.success(request.kind, request.target_id, payload, now() - start)
        )

    def _do_adapt(self, request: AdaptRequest) -> dict:
        service = self.service_for(request.target_id)
        report = service.adapt(request.target_id, request.inputs, seed=request.seed)
        return {"report": report.to_dict(), "shard": self.shard_for(request.target_id)}

    def _do_predict(self, request: PredictRequest) -> dict:
        # Single requests go through the same executor as coalesced bursts
        # (one plan, one group): sharing the code path is what makes
        # per-request and micro-batched outputs bit-identical.
        service = self.service_for(request.target_id)
        model, lock, fallback = service._predict_entry(request.target_id, request.strict)
        plan = PredictPlan(
            index=0,
            target_id=request.target_id,
            inputs=request.inputs,
            batch_size=request.batch_size,
            fallback=fallback,
            model=model,
            lock=lock,
        )
        run_model_group(model, lock, [plan], self.batch_policy, metrics=self.metrics)
        return {
            "prediction": plan.output,
            "n_rows": int(len(plan.output)),
            "model": "source" if fallback else "adapted",
            "coalesced": bool(plan.coalesced),
        }

    def _do_stream(self, request: StreamRequest) -> dict:
        service = self.service_for(request.target_id)
        if not isinstance(service, StreamingAdaptationService):
            raise TypeError(
                "stream requests need streaming shards: construct the Gateway with a "
                "calibration (streaming requires the source confidence threshold)"
            )
        event = service.ingest(request.target_id, request.batch)
        return {"event": event.to_dict(), "shard": self.shard_for(request.target_id)}

    def _do_report(self, request: ReportRequest) -> dict:
        if request.target_id is None:
            reports = self.reports()
            return {"reports": {name: report.to_dict() for name, report in reports.items()}}
        service = self.service_for(request.target_id)
        report = service.report_for(request.target_id)
        payload: dict = {
            "report": None if report is None else report.to_dict(),
            "shard": self.shard_for(request.target_id),
        }
        if isinstance(service, StreamingAdaptationService):
            payload["stream"] = service.stream_stats(request.target_id)
        return payload

    def _do_metrics(self, request: MetricsRequest) -> dict:
        if request.target_id is None:
            return {"metrics": self.metrics_snapshot()}
        shard = self.shard_for(request.target_id)
        merged = MetricsRegistry()
        merged.merge(self.metrics.snapshot())
        merged.merge(self._shards[shard].metrics.snapshot(), extra_labels={"shard": shard})
        return {"metrics": merged.snapshot(), "shard": shard}

    def _handle_adapt_group(
        self, shard: int, group: list[tuple[int, AdaptRequest]]
    ) -> list[tuple[int, Envelope]]:
        """Serve one shard's adapt burst with stacked (``train_batching``) training.

        Requests chunk into stacks of up to ``train_batching``; each stack is
        one fine-tune (on the shard's worker pool when one is attached).
        Per-request failures come back inside the stack as data; a failure of
        the *whole* stack call (e.g. the worker pool was killed underneath
        it) fails every request of that chunk — the same error each request
        would have seen individually.
        """
        service = self._shards[shard]
        start = now()
        results: list[tuple[int, Envelope]] = []
        for chunk_start in range(0, len(group), self.train_batching):
            chunk = group[chunk_start : chunk_start + self.train_batching]
            entries = [
                (request.target_id, request.inputs, request.seed)
                for _, request in chunk
            ]
            try:
                raw = service.adapt_stack(entries)
            except Exception as exc:
                raw = [(None, exc)] * len(chunk)
            duration = now() - start
            for (index, request), (report, error) in zip(chunk, raw):
                if error is not None:
                    envelope = Envelope.failure(
                        request.kind, request.target_id, error, duration
                    )
                else:
                    envelope = Envelope.success(
                        request.kind,
                        request.target_id,
                        {"report": report.to_dict(), "shard": shard},
                        duration,
                    )
                results.append((index, self._count_envelope(envelope)))
        return results

    def _handle_stream_group(
        self, shard: int, group: list[tuple[int, StreamRequest]]
    ) -> list[tuple[int, Envelope]]:
        """Serve one shard's stream burst through stacked ``ingest_many``.

        Waves of distinct target ids go through the streaming service's
        ``train_batching`` path together (a repeated id cuts a wave — its
        second batch must see the state its first produced).  Batches are
        already shape-validated at :class:`StreamRequest` construction, so a
        wave failure here means the machinery (not a payload) broke — every
        request of the wave gets that error as its envelope.
        """
        service = self._shards[shard]
        start = now()
        results: list[tuple[int, Envelope]] = []
        if not isinstance(service, StreamingAdaptationService):
            error_text = (
                "stream requests need streaming shards: construct the Gateway with a "
                "calibration (streaming requires the source confidence threshold)"
            )
            duration = now() - start
            return [
                (
                    index,
                    self._count_envelope(
                        Envelope.failure(
                            request.kind, request.target_id, TypeError(error_text), duration
                        )
                    ),
                )
                for index, request in group
            ]
        waves: list[list[tuple[int, StreamRequest]]] = []
        wave: list[tuple[int, StreamRequest]] = []
        seen: set[str] = set()
        for index, request in group:
            target_id = canonical_target_id(request.target_id)
            if target_id in seen:
                waves.append(wave)
                wave, seen = [], set()
            wave.append((index, request))
            seen.add(target_id)
        if wave:
            waves.append(wave)
        for wave in waves:
            try:
                events = service.ingest_many(
                    [(request.target_id, request.batch) for _, request in wave],
                    train_batching=self.train_batching,
                )
            except Exception as exc:
                duration = now() - start
                for index, request in wave:
                    results.append(
                        (
                            index,
                            self._count_envelope(
                                Envelope.failure(
                                    request.kind, request.target_id, exc, duration
                                )
                            ),
                        )
                    )
                continue
            duration = now() - start
            for index, request in wave:
                event = events[canonical_target_id(request.target_id)]
                results.append(
                    (
                        index,
                        self._count_envelope(
                            Envelope.success(
                                request.kind,
                                request.target_id,
                                {"event": event.to_dict(), "shard": shard},
                                duration,
                            )
                        ),
                    )
                )
        return results

    def _handle_predict_group(
        self, shard: int, group: list[tuple[int, PredictRequest]]
    ) -> list[tuple[int, Envelope]]:
        """Serve one shard's predict burst with micro-batched forwards."""
        start = now()
        service = self._shards[shard]
        results: list[tuple[int, Envelope]] = []
        plans: list[PredictPlan] = []
        by_index: dict[int, PredictPlan] = {}
        # Telemetry for the whole burst is tallied locally and issued as a
        # handful of aggregated registry calls — per-request counting would
        # put a lock acquisition on every entry of the serving hot path.
        n_hits = n_misses = n_strict_misses = 0
        for index, request in group:
            try:
                model, lock, fallback = service._predict_entry(
                    request.target_id, request.strict, count_metrics=False
                )
            except Exception as exc:
                if request.strict and isinstance(exc, KeyError):
                    n_strict_misses += 1
                results.append(
                    (
                        index,
                        self._count_envelope(
                            Envelope.failure(
                                request.kind, request.target_id, exc, now() - start
                            )
                        ),
                    )
                )
                continue
            if fallback:
                n_misses += 1
            else:
                n_hits += 1
            plan = PredictPlan(
                index=index,
                target_id=request.target_id,
                inputs=request.inputs,
                batch_size=request.batch_size,
                fallback=fallback,
                model=model,
                lock=lock,
            )
            plans.append(plan)
            by_index[index] = plan
        cache_tally = [
            pair
            for pair in (
                ("service.cache.hits", n_hits),
                ("service.cache.misses", n_misses),
                ("service.cache.strict_misses", n_strict_misses),
            )
            if pair[1]
        ]
        if cache_tally:
            service.metrics.counter_many(cache_tally)

        # Group by (model instance, batch_size): dedup and stacking must
        # never mix chunkings, and a model instance must forward under its
        # own lock exactly once per group.  Batching accounting accumulates
        # in one shared tally across the burst's model groups and settles
        # with the registry once, below.
        batch_tally: list[tuple[str, float]] = []
        occupancies: list[float] = []
        model_groups: dict[tuple[int, int], list[PredictPlan]] = {}
        for plan in plans:
            model_groups.setdefault((id(plan.model), plan.batch_size), []).append(plan)
        for grouped in model_groups.values():
            try:
                run_model_group(
                    grouped[0].model,
                    grouped[0].lock,
                    grouped,
                    self.batch_policy,
                    tally=batch_tally,
                    occupancies=occupancies,
                )
            except Exception:
                # A coalesced forward cannot attribute its failure (one bad
                # payload fails the whole tile), so degrade to per-plan
                # execution: good requests still get answers, each bad one
                # gets its own error envelope instead of poisoning the batch.
                for plan in grouped:
                    plan.output, plan.coalesced = None, False
                    try:
                        run_model_group(
                            plan.model,
                            plan.lock,
                            [plan],
                            self.batch_policy,
                            tally=batch_tally,
                            occupancies=occupancies,
                        )
                    except Exception as exc:
                        plan.error = exc

        duration = now() - start
        n_ok = 0
        for index, request in group:
            plan = by_index.get(index)
            if plan is None:
                continue  # already answered with an error envelope
            if plan.error is not None or plan.output is None:
                error = plan.error if plan.error is not None else RuntimeError(
                    "prediction produced no output"
                )
                results.append(
                    (
                        index,
                        self._count_envelope(
                            Envelope.failure(request.kind, request.target_id, error, duration)
                        ),
                    )
                )
                continue
            n_ok += 1
            results.append(
                (
                    index,
                    Envelope.success(
                        request.kind,
                        request.target_id,
                        {
                            "prediction": plan.output,
                            "n_rows": int(len(plan.output)),
                            "model": "source" if plan.fallback else "adapted",
                            "coalesced": bool(plan.coalesced),
                        },
                        duration,
                    ),
                )
            )
        # One settlement for the whole burst: all successful envelopes share
        # one kind and one duration, and the batching tally accumulated
        # across the model groups — a single bulk registry call.
        folded: dict[str, float] = {}
        for name, value in batch_tally:
            folded[name] = folded.get(name, 0) + value
        counters = [(name, value, None) for name, value in folded.items()]
        observations = [
            ("batch.tile_occupancy", occupancy, 1, RATIO_BUCKETS, None)
            for occupancy in occupancies
        ]
        if n_ok:
            counters.append(("serve.requests", n_ok, {"kind": "predict"}))
            observations.append(
                ("serve.request_seconds", duration, n_ok, None, {"kind": "predict"})
            )
        if counters or observations:
            self.metrics.bulk(counters=counters, observations=observations)
        return results

    # ------------------------------------------------------------------
    # Fleet-level conveniences (thin wrappers over the shard services)
    # ------------------------------------------------------------------
    def adapt(self, target_id: str, inputs: np.ndarray, seed: int | None = None):
        """Adapt one target on its shard; returns the report (raises on error)."""
        return self.service_for(target_id).adapt(target_id, inputs, seed=seed)

    def predict(self, target_id: str, inputs: np.ndarray, **kwargs) -> np.ndarray:
        """Predict for one target through the *legacy* service path.

        This is :meth:`AdaptationService.predict` on the owning shard —
        request-shaped forwards, unchanged semantics.  The gateway's own
        submit paths run sub-batch payloads through fixed-shape tiles
        instead (see :mod:`repro.serve.batching`), which can differ from
        this path by float rounding; within the submit surface everything
        is bit-identical.
        """
        return self.service_for(target_id).predict(target_id, inputs, **kwargs)

    def model_for(self, target_id: str, required: bool = False):
        """The cached adapted model for ``target_id`` from its shard."""
        return self.service_for(target_id).model_for(target_id, required=required)

    def report_for(self, target_id: str):
        """The stored report for ``target_id`` from its shard."""
        return self.service_for(target_id).report_for(target_id)

    def reports(self) -> dict:
        """All reports across all shards, keyed by target id."""
        merged: dict = {}
        for service in self._shards:
            merged.update(service.reports())
        return merged

    def metrics_snapshot(self) -> dict:
        """One merged ``repro.metrics/v1`` snapshot for the whole fleet.

        The gateway's own registry (requests, queues, batching) merged with
        every shard service's registry (cache, adaptation, streaming, worker
        and engine counters), shard entries labeled ``shard=<index>`` so one
        hot shard stands out instead of averaging away.
        """
        merged = MetricsRegistry()
        merged.merge(self.metrics.snapshot())
        for index, service in enumerate(self._shards):
            merged.merge(service.metrics.snapshot(), extra_labels={"shard": index})
        return merged.snapshot()

    def set_metrics_enabled(self, enabled: bool) -> None:
        """Toggle metric collection across the gateway and every shard."""
        self.metrics.enabled = bool(enabled)
        for service in self._shards:
            service.metrics.enabled = bool(enabled)

    def stream_stats(self, target_id: str) -> dict:
        """Per-target streaming counters from the owning shard."""
        service = self.service_for(target_id)
        if not isinstance(service, StreamingAdaptationService):
            raise TypeError("this gateway has batch shards (no calibration): no streams")
        return service.stream_stats(target_id)

    def events_for(self, target_id: str) -> list:
        """Per-target stream event log from the owning shard."""
        service = self.service_for(target_id)
        if not isinstance(service, StreamingAdaptationService):
            raise TypeError("this gateway has batch shards (no calibration): no streams")
        return service.events_for(target_id)

    def close(self) -> None:
        """Shut the shard worker pools down (idempotent).

        Dispatch pools drain, and any attached process worker pools are
        released (their weights die with them; the shard services and their
        caches remain usable in-process).
        """
        for dispatch in self._dispatch:
            dispatch.close()
        for service in self._shards:
            service.close()

    def __enter__(self) -> "Gateway":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
