"""Uncertainty estimation and calibration substrate for TASFAR."""

from .calibration import UncertaintyCalibrator, fit_sigma_curve
from .error_models import (
    ErrorModel,
    GaussianErrorModel,
    LaplaceErrorModel,
    UniformErrorModel,
    get_error_model,
)
from .mc_dropout import MCDropoutPredictor, UncertainPrediction

__all__ = [
    "ErrorModel",
    "GaussianErrorModel",
    "LaplaceErrorModel",
    "MCDropoutPredictor",
    "UncertainPrediction",
    "UncertaintyCalibrator",
    "UniformErrorModel",
    "fit_sigma_curve",
    "get_error_model",
]
