"""Uncertainty-to-error calibration: the function ``Q_s`` of the paper.

TASFAR models the label of each confident prediction as a Gaussian centred on
the prediction whose standard deviation grows with the model's uncertainty
(Eq. 5–6).  The mapping ``sigma = Q_s(u)`` is fitted **on the source dataset**
before deployment (Eq. 7–9): source predictions are grouped into ``q``
uncertainty segments, the error spread of each segment is estimated, and a
first-order polynomial is fitted by least squares.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["UncertaintyCalibrator", "fit_sigma_curve"]

# Fraction of the data expected to fall within one standard deviation of a
# Gaussian; the paper fits Q_s so that ~68% of segment errors are below it.
_ONE_SIGMA_COVERAGE = 0.68


@dataclass
class UncertaintyCalibrator:
    """Linear map from prediction uncertainty to error standard deviation.

    ``sigma = intercept + slope * u``, clipped below at ``min_sigma`` so the
    instance-label Gaussian never degenerates.
    """

    intercept: float
    slope: float
    min_sigma: float = 1e-6

    def __call__(self, uncertainty: np.ndarray | float) -> np.ndarray | float:
        """Evaluate ``Q_s`` on scalar or array uncertainty values."""
        sigma = self.intercept + self.slope * np.asarray(uncertainty, dtype=np.float64)
        sigma = np.maximum(sigma, self.min_sigma)
        if np.isscalar(uncertainty):
            return float(sigma)
        return sigma

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(intercept, slope)`` i.e. ``(a0, a1)`` in the paper."""
        return self.intercept, self.slope


def fit_sigma_curve(
    uncertainties: np.ndarray,
    errors: np.ndarray,
    n_segments: int = 40,
    coverage: float = _ONE_SIGMA_COVERAGE,
    min_sigma: float = 1e-6,
) -> UncertaintyCalibrator:
    """Fit ``Q_s`` from source-model uncertainties and absolute errors.

    Parameters
    ----------
    uncertainties:
        Per-sample scalar prediction uncertainty on the source dataset.
    errors:
        Per-sample absolute prediction error (same length).  For
        multi-dimensional labels, pass the per-dimension error and call the
        function once per dimension, or pass an aggregate error.
    n_segments:
        Number of uncertainty segments ``q`` (paper default 40, Fig. 9 studies
        the sensitivity).
    coverage:
        Quantile of the segment errors used as the segment's sigma estimate.
        The default (0.68) matches the paper's "around 68% of data should show
        errors less than sigma".
    min_sigma:
        Lower bound applied when evaluating the calibrator.

    Returns
    -------
    UncertaintyCalibrator
        The fitted linear curve, with a non-negative slope guarantee relaxed:
        if the fitted slope is negative (which can happen on tiny or
        pathological inputs) the calibrator falls back to a constant equal to
        the overall error quantile.
    """
    uncertainties = np.asarray(uncertainties, dtype=np.float64).ravel()
    errors = np.abs(np.asarray(errors, dtype=np.float64).ravel())
    if uncertainties.shape != errors.shape:
        raise ValueError("uncertainties and errors must have the same length")
    if len(uncertainties) == 0:
        raise ValueError("cannot fit a calibration curve from zero samples")
    if not 0.0 < coverage < 1.0:
        raise ValueError("coverage must be in (0, 1)")
    if n_segments <= 0:
        raise ValueError("n_segments must be positive")

    n_segments = min(n_segments, len(uncertainties))
    order = np.argsort(uncertainties)
    sorted_u = uncertainties[order]
    sorted_e = errors[order]
    segment_bounds = np.array_split(np.arange(len(sorted_u)), n_segments)

    segment_u: list[float] = []
    segment_sigma: list[float] = []
    for indices in segment_bounds:
        if len(indices) == 0:
            continue
        segment_u.append(float(sorted_u[indices].mean()))
        segment_sigma.append(float(np.quantile(sorted_e[indices], coverage)))

    segment_u_arr = np.array(segment_u)
    segment_sigma_arr = np.array(segment_sigma)
    fallback = float(np.quantile(errors, coverage))

    if len(segment_u_arr) < 2 or np.allclose(segment_u_arr.var(), 0.0):
        return UncertaintyCalibrator(intercept=fallback, slope=0.0, min_sigma=min_sigma)

    # Least-squares fit of sigma = a0 + a1 * u (Eq. 9 of the paper).
    mean_u = segment_u_arr.mean()
    mean_sigma = segment_sigma_arr.mean()
    denominator = float(((segment_u_arr - mean_u) ** 2).sum())
    slope = float(((segment_u_arr - mean_u) * (segment_sigma_arr - mean_sigma)).sum() / denominator)
    intercept = float(mean_sigma - slope * mean_u)

    if slope < 0:
        # The core assumption (error grows with uncertainty) does not hold on
        # this data; degrade gracefully to a constant-sigma calibrator.
        return UncertaintyCalibrator(intercept=fallback, slope=0.0, min_sigma=min_sigma)
    return UncertaintyCalibrator(intercept=intercept, slope=slope, min_sigma=min_sigma)
