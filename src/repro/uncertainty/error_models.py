"""Instance-label error models.

The label distribution estimator accumulates, for each confident prediction, a
probability distribution of where the true label lies (Eq. 5 and Fig. 4).  The
paper uses a Gaussian by default and reports in Fig. 8 that other
distributional forms behave similarly as long as the spread grows with
uncertainty.  This module provides the three families compared there:
Gaussian, Laplace and Uniform.

Each error model exposes ``interval_probability`` which integrates the density
over a grid interval — the quantity accumulated into the label density map
(Eq. 10) — vectorized over grid edges.
"""

from __future__ import annotations

import numpy as np
from scipy import special

__all__ = ["ErrorModel", "GaussianErrorModel", "LaplaceErrorModel", "UniformErrorModel", "get_error_model"]


class ErrorModel:
    """Distribution of the true label around a prediction with scale ``sigma``."""

    name = "base"

    def interval_probability(
        self, center: float, sigma: float, lower: np.ndarray, upper: np.ndarray
    ) -> np.ndarray:
        """Probability mass assigned to each ``[lower, upper)`` interval."""
        raise NotImplementedError

    def cdf(self, value: np.ndarray, center: float, sigma: float) -> np.ndarray:
        """Cumulative distribution function."""
        raise NotImplementedError


class GaussianErrorModel(ErrorModel):
    """Gaussian instance-label distribution (paper default, Eq. 5/11)."""

    name = "gaussian"

    def cdf(self, value, center, sigma):
        value = np.asarray(value, dtype=np.float64)
        z = (value - center) / (np.sqrt(2.0) * max(sigma, 1e-12))
        return 0.5 * (1.0 + special.erf(z))

    def interval_probability(self, center, sigma, lower, upper):
        return self.cdf(upper, center, sigma) - self.cdf(lower, center, sigma)


class LaplaceErrorModel(ErrorModel):
    """Laplace instance-label distribution with matching standard deviation."""

    name = "laplace"

    def cdf(self, value, center, sigma):
        value = np.asarray(value, dtype=np.float64)
        # A Laplace(b) has std sqrt(2) * b; match the requested sigma.
        scale = max(sigma, 1e-12) / np.sqrt(2.0)
        z = np.clip((value - center) / scale, -700.0, 700.0)
        return np.where(z < 0, 0.5 * np.exp(z), 1.0 - 0.5 * np.exp(-z))

    def interval_probability(self, center, sigma, lower, upper):
        return self.cdf(upper, center, sigma) - self.cdf(lower, center, sigma)


class UniformErrorModel(ErrorModel):
    """Uniform instance-label distribution with matching standard deviation."""

    name = "uniform"

    def cdf(self, value, center, sigma):
        value = np.asarray(value, dtype=np.float64)
        # A Uniform(-h, h) has std h / sqrt(3); match the requested sigma.
        half_width = max(sigma, 1e-12) * np.sqrt(3.0)
        z = (value - (center - half_width)) / (2.0 * half_width)
        return np.clip(z, 0.0, 1.0)

    def interval_probability(self, center, sigma, lower, upper):
        return self.cdf(upper, center, sigma) - self.cdf(lower, center, sigma)


_ERROR_MODELS = {
    "gaussian": GaussianErrorModel,
    "laplace": LaplaceErrorModel,
    "uniform": UniformErrorModel,
}


def get_error_model(name: str) -> ErrorModel:
    """Look up an error model by name (``gaussian``, ``laplace`` or ``uniform``)."""
    try:
        return _ERROR_MODELS[name.lower()]()
    except KeyError as exc:
        raise ValueError(
            f"unknown error model {name!r}; expected one of {sorted(_ERROR_MODELS)}"
        ) from exc
