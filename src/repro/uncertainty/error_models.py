"""Instance-label error models.

The label distribution estimator accumulates, for each confident prediction, a
probability distribution of where the true label lies (Eq. 5 and Fig. 4).  The
paper uses a Gaussian by default and reports in Fig. 8 that other
distributional forms behave similarly as long as the spread grows with
uncertainty.  This module provides the three families compared there:
Gaussian, Laplace and Uniform.

Each error model exposes ``interval_probability`` which integrates the density
over a grid interval — the quantity accumulated into the label density map
(Eq. 10) — vectorized over grid edges.
"""

from __future__ import annotations

import numpy as np
from scipy import special

__all__ = ["ErrorModel", "GaussianErrorModel", "LaplaceErrorModel", "UniformErrorModel", "get_error_model"]


class ErrorModel:
    """Distribution of the true label around a prediction with scale ``sigma``."""

    name = "base"

    def interval_probability(
        self, center: float, sigma: float, lower: np.ndarray, upper: np.ndarray
    ) -> np.ndarray:
        """Probability mass assigned to each ``[lower, upper)`` interval."""
        raise NotImplementedError

    def cdf(self, value: np.ndarray, center: float, sigma: float) -> np.ndarray:
        """Cumulative distribution function."""
        raise NotImplementedError

    def batch_interval_probability(
        self, centers: np.ndarray, sigmas: np.ndarray, lower: np.ndarray, upper: np.ndarray
    ) -> np.ndarray:
        """Interval masses for a whole batch of instances at once.

        Parameters
        ----------
        centers, sigmas:
            Per-instance location and scale, shape ``(n_instances,)``.
        lower, upper:
            Interval bounds shared by all instances, shape ``(n_intervals,)``.

        Returns
        -------
        np.ndarray
            Mass matrix of shape ``(n_instances, n_intervals)``.  The built-in
            families override this with a broadcasted closed form; this
            generic fallback loops over instances so any custom scalar-only
            subclass keeps working with the vectorized density-map path.
        """
        centers = np.asarray(centers, dtype=np.float64).ravel()
        sigmas = np.asarray(sigmas, dtype=np.float64).ravel()
        return np.stack(
            [
                self.interval_probability(float(center), float(sigma), lower, upper)
                for center, sigma in zip(centers, sigmas)
            ],
            axis=0,
        )


class GaussianErrorModel(ErrorModel):
    """Gaussian instance-label distribution (paper default, Eq. 5/11)."""

    name = "gaussian"

    def cdf(self, value, center, sigma):
        value = np.asarray(value, dtype=np.float64)
        z = (value - center) / (np.sqrt(2.0) * max(sigma, 1e-12))
        return 0.5 * (1.0 + special.erf(z))

    def interval_probability(self, center, sigma, lower, upper):
        return self.cdf(upper, center, sigma) - self.cdf(lower, center, sigma)

    def batch_interval_probability(self, centers, sigmas, lower, upper):
        centers = np.asarray(centers, dtype=np.float64).reshape(-1, 1)
        sigmas = np.maximum(np.asarray(sigmas, dtype=np.float64).reshape(-1, 1), 1e-12)
        denom = np.sqrt(2.0) * sigmas
        upper_cdf = 0.5 * (1.0 + special.erf((np.asarray(upper, dtype=np.float64) - centers) / denom))
        lower_cdf = 0.5 * (1.0 + special.erf((np.asarray(lower, dtype=np.float64) - centers) / denom))
        return upper_cdf - lower_cdf


class LaplaceErrorModel(ErrorModel):
    """Laplace instance-label distribution with matching standard deviation."""

    name = "laplace"

    def cdf(self, value, center, sigma):
        value = np.asarray(value, dtype=np.float64)
        # A Laplace(b) has std sqrt(2) * b; match the requested sigma.
        scale = max(sigma, 1e-12) / np.sqrt(2.0)
        z = np.clip((value - center) / scale, -700.0, 700.0)
        return np.where(z < 0, 0.5 * np.exp(z), 1.0 - 0.5 * np.exp(-z))

    def interval_probability(self, center, sigma, lower, upper):
        return self.cdf(upper, center, sigma) - self.cdf(lower, center, sigma)

    def batch_interval_probability(self, centers, sigmas, lower, upper):
        centers = np.asarray(centers, dtype=np.float64).reshape(-1, 1)
        scale = np.maximum(np.asarray(sigmas, dtype=np.float64).reshape(-1, 1), 1e-12) / np.sqrt(2.0)

        def batch_cdf(value: np.ndarray) -> np.ndarray:
            z = np.clip((np.asarray(value, dtype=np.float64) - centers) / scale, -700.0, 700.0)
            return np.where(z < 0, 0.5 * np.exp(z), 1.0 - 0.5 * np.exp(-z))

        return batch_cdf(upper) - batch_cdf(lower)


class UniformErrorModel(ErrorModel):
    """Uniform instance-label distribution with matching standard deviation."""

    name = "uniform"

    def cdf(self, value, center, sigma):
        value = np.asarray(value, dtype=np.float64)
        # A Uniform(-h, h) has std h / sqrt(3); match the requested sigma.
        half_width = max(sigma, 1e-12) * np.sqrt(3.0)
        z = (value - (center - half_width)) / (2.0 * half_width)
        return np.clip(z, 0.0, 1.0)

    def interval_probability(self, center, sigma, lower, upper):
        return self.cdf(upper, center, sigma) - self.cdf(lower, center, sigma)

    def batch_interval_probability(self, centers, sigmas, lower, upper):
        centers = np.asarray(centers, dtype=np.float64).reshape(-1, 1)
        half_width = np.maximum(np.asarray(sigmas, dtype=np.float64).reshape(-1, 1), 1e-12) * np.sqrt(3.0)

        def batch_cdf(value: np.ndarray) -> np.ndarray:
            z = (np.asarray(value, dtype=np.float64) - (centers - half_width)) / (2.0 * half_width)
            return np.clip(z, 0.0, 1.0)

        return batch_cdf(upper) - batch_cdf(lower)


_ERROR_MODELS = {
    "gaussian": GaussianErrorModel,
    "laplace": LaplaceErrorModel,
    "uniform": UniformErrorModel,
}


def get_error_model(name: str) -> ErrorModel:
    """Look up an error model by name (``gaussian``, ``laplace`` or ``uniform``)."""
    try:
        return _ERROR_MODELS[name.lower()]()
    except KeyError as exc:
        raise ValueError(
            f"unknown error model {name!r}; expected one of {sorted(_ERROR_MODELS)}"
        ) from exc
