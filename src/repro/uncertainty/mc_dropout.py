"""Monte-Carlo dropout uncertainty estimation.

The paper estimates prediction confidence with the dropout mechanism
(Section IV-A): "Uncertainty is presented by the standard deviation of
predictions from twenty samplings with a dropout rate of 0.2."  This module
implements exactly that protocol on top of :class:`repro.nn.RegressionModel`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn.models import RegressionModel

__all__ = ["UncertainPrediction", "MCDropoutPredictor"]


@dataclass
class UncertainPrediction:
    """Mean prediction with its per-sample uncertainty.

    Attributes
    ----------
    mean:
        Mean prediction over the MC samples, shape ``(n_samples, label_dim)``.
    std:
        Per-dimension standard deviation over MC samples, same shape as
        ``mean``.
    uncertainty:
        Scalar uncertainty per sample: the per-dimension std averaged over the
        label dimensions.  This is the quantity compared against the
        confidence threshold ``tau``.
    samples:
        Raw MC samples of shape ``(n_mc, n_samples, label_dim)`` when
        ``keep_samples`` was requested, otherwise ``None``.
    """

    mean: np.ndarray
    std: np.ndarray
    uncertainty: np.ndarray
    samples: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self.mean)


class MCDropoutPredictor:
    """Stochastic forward passes with dropout enabled at inference time.

    Parameters
    ----------
    model:
        A regression model containing at least one dropout layer.  If the
        model has no dropout layer a warning-level fallback is used: the
        uncertainty is zero for all samples (the confidence classifier then
        treats every sample as confident).
    n_samples:
        Number of Monte-Carlo forward passes (paper default: 20).
    batch_size:
        Mini-batch size used for the forward passes.
    """

    def __init__(self, model: RegressionModel, n_samples: int = 20, batch_size: int = 256) -> None:
        if n_samples < 2:
            raise ValueError("n_samples must be at least 2 to estimate a spread")
        self.model = model
        self.n_samples = n_samples
        self.batch_size = batch_size

    def predict(self, inputs: np.ndarray, keep_samples: bool = False) -> UncertainPrediction:
        """Return mean prediction and MC-dropout uncertainty for ``inputs``."""
        inputs = np.asarray(inputs, dtype=np.float64)
        has_dropout = len(self.model.dropout_layers()) > 0

        self.model.eval()
        deterministic = self._forward_batched(inputs)
        if not has_dropout:
            zeros = np.zeros_like(deterministic)
            return UncertainPrediction(
                mean=deterministic,
                std=zeros,
                uncertainty=np.zeros(len(deterministic)),
                samples=None,
            )

        self.model.set_mc_dropout(True)
        try:
            samples = np.stack(
                [self._forward_batched(inputs) for _ in range(self.n_samples)], axis=0
            )
        finally:
            self.model.set_mc_dropout(False)
            self.model.eval()

        mean = samples.mean(axis=0)
        std = samples.std(axis=0)
        uncertainty = std.mean(axis=1)
        return UncertainPrediction(
            mean=mean,
            std=std,
            uncertainty=uncertainty,
            samples=samples if keep_samples else None,
        )

    def _forward_batched(self, inputs: np.ndarray) -> np.ndarray:
        outputs = []
        for start in range(0, len(inputs), self.batch_size):
            outputs.append(self.model.forward(inputs[start : start + self.batch_size]))
        return np.concatenate(outputs, axis=0)
