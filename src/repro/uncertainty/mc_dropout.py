"""Monte-Carlo dropout uncertainty estimation.

The paper estimates prediction confidence with the dropout mechanism
(Section IV-A): "Uncertainty is presented by the standard deviation of
predictions from twenty samplings with a dropout rate of 0.2."  This module
implements exactly that protocol on top of :class:`repro.nn.RegressionModel`.

Two execution strategies are provided:

* the **vectorized** path (default) stacks ``n_samples`` replicas of each
  mini-batch along the batch axis and runs them through the network in a
  single forward pass;
* the **loop** path runs ``n_samples`` sequential forward passes per
  mini-batch — the paper's literal protocol.

Both paths give every dropout layer its own private random stream
(:meth:`repro.nn.Dropout.set_mc_rng`).  Because ``Generator.random`` fills
arrays from the stream in C order, one stacked ``(n_samples * batch, ...)``
mask draw is bit-identical to ``n_samples`` consecutive ``(batch, ...)``
draws, so the two strategies produce **bit-for-bit identical results** for
the same seed while the vectorized one amortizes the Python/numpy per-layer
call overhead over ``n_samples`` replicas (see
``benchmarks/test_bench_runtime.py`` for the measured speedup).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn.dropout import Dropout
from ..nn.models import RegressionModel

__all__ = ["UncertainPrediction", "MCDropoutPredictor"]


@dataclass
class UncertainPrediction:
    """Mean prediction with its per-sample uncertainty.

    Attributes
    ----------
    mean:
        Mean prediction over the MC samples, shape ``(n_samples, label_dim)``.
    std:
        Per-dimension standard deviation over MC samples, same shape as
        ``mean``.
    uncertainty:
        Scalar uncertainty per sample: the per-dimension std averaged over the
        label dimensions.  This is the quantity compared against the
        confidence threshold ``tau``.
    samples:
        Raw MC samples of shape ``(n_mc, n_samples, label_dim)`` when
        ``keep_samples`` was requested, otherwise ``None``.
    """

    mean: np.ndarray
    std: np.ndarray
    uncertainty: np.ndarray
    samples: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self.mean)


class MCDropoutPredictor:
    """Stochastic forward passes with dropout enabled at inference time.

    Parameters
    ----------
    model:
        A regression model containing at least one dropout layer.  If the
        model has no dropout layer a warning-level fallback is used: the
        uncertainty is zero for all samples (the confidence classifier then
        treats every sample as confident).
    n_samples:
        Number of Monte-Carlo forward passes (paper default: 20).
    batch_size:
        Maximum number of rows per forward call.  The deterministic pass
        partitions the input by this directly; the stacked MC forward keeps
        ``n_samples * mc_batch_rows`` within the same budget, which matters
        on small caches (a 20x-tiled 256-row batch thrashes L2 and ends up
        slower than the loop it replaces).
    seed:
        Seed (or :class:`numpy.random.SeedSequence`) for the per-layer MC
        dropout streams.  With an explicit seed the prediction is a pure
        function of ``(model parameters, inputs, seed)`` — required for the
        parallel :class:`~repro.runtime.AdaptationService` to be
        order-independent.  With ``None`` the entropy is drawn from the
        model's first dropout layer's own generator, so repeated calls
        differ (the historical behaviour).
    vectorized:
        Use the stacked-replica forward (default).  ``False`` selects the
        sequential per-sample loop.
    mc_batch_rows:
        Input rows per MC chunk, shared by both strategies so they consume
        the per-layer mask streams identically (and therefore draw
        bit-identical dropout masks for the same seed).  Defaults to
        ``max(1, batch_size // n_samples)``.
    """

    def __init__(
        self,
        model: RegressionModel,
        n_samples: int = 20,
        batch_size: int = 256,
        seed: int | np.random.SeedSequence | None = None,
        vectorized: bool = True,
        mc_batch_rows: int | None = None,
    ) -> None:
        if n_samples < 2:
            raise ValueError("n_samples must be at least 2 to estimate a spread")
        self.model = model
        self.n_samples = n_samples
        self.batch_size = batch_size
        self.vectorized = vectorized
        if mc_batch_rows is None:
            mc_batch_rows = max(1, batch_size // n_samples)
        if mc_batch_rows < 1:
            raise ValueError("mc_batch_rows must be at least 1")
        self.mc_batch_rows = mc_batch_rows
        if isinstance(seed, np.random.SeedSequence):
            self._seed_sequence: np.random.SeedSequence | None = seed
        elif seed is not None:
            self._seed_sequence = np.random.SeedSequence(seed)
        else:
            self._seed_sequence = None

    def predict(self, inputs: np.ndarray, keep_samples: bool = False) -> UncertainPrediction:
        """Return mean prediction and MC-dropout uncertainty for ``inputs``."""
        inputs = np.asarray(inputs, dtype=np.float64)
        # One module-tree walk per call: eval/set_mc_dropout each re-walk the
        # tree, which dominates the runtime for small inputs.
        modules = self.model.modules()
        dropout_layers = [module for module in modules if isinstance(module, Dropout)]

        for module in modules:
            module.training = False
        deterministic = self._forward_batched(inputs)
        if not dropout_layers:
            zeros = np.zeros_like(deterministic)
            return UncertainPrediction(
                mean=deterministic,
                std=zeros,
                uncertainty=np.zeros(len(deterministic)),
                samples=None,
            )

        for layer, rng in zip(dropout_layers, self._layer_rngs(dropout_layers)):
            layer.set_mc_rng(rng)
            layer.enable_mc(True)
        try:
            if self.vectorized:
                samples = self._mc_samples_vectorized(inputs)
            else:
                samples = self._mc_samples_loop(inputs)
        finally:
            for layer in dropout_layers:
                layer.set_mc_rng(None)
                layer.enable_mc(False)

        mean = samples.mean(axis=0)
        std = samples.std(axis=0)
        uncertainty = std.mean(axis=1)
        return UncertainPrediction(
            mean=mean,
            std=std,
            uncertainty=uncertainty,
            samples=samples if keep_samples else None,
        )

    # ------------------------------------------------------------------
    # MC sampling strategies
    # ------------------------------------------------------------------
    def _layer_rngs(self, dropout_layers: list[Dropout]) -> list[np.random.Generator]:
        """One independent generator per dropout layer.

        Each :meth:`predict` call spawns a fresh batch of children so
        consecutive calls use different masks, while the overall sequence is
        deterministic for a seeded predictor.
        """
        if self._seed_sequence is not None:
            children = self._seed_sequence.spawn(len(dropout_layers))
        else:
            entropy = int(dropout_layers[0].rng.integers(np.iinfo(np.int64).max))
            children = np.random.SeedSequence(entropy).spawn(len(dropout_layers))
        return [np.random.default_rng(child) for child in children]

    def _mc_samples_vectorized(self, inputs: np.ndarray) -> np.ndarray:
        """All MC passes of each input chunk in one stacked forward."""
        batches = []
        for start in range(0, len(inputs), self.mc_batch_rows):
            chunk = inputs[start : start + self.mc_batch_rows]
            tiled = np.concatenate([chunk] * self.n_samples, axis=0)
            outputs = self.model.forward(tiled)
            batches.append(outputs.reshape(self.n_samples, len(chunk), -1))
        return np.concatenate(batches, axis=1)

    def _mc_samples_loop(self, inputs: np.ndarray) -> np.ndarray:
        """Reference strategy: ``n_samples`` sequential passes per chunk.

        Iterates chunk-major (all MC passes of a chunk before moving on to
        the next) so the per-layer stream consumption matches the stacked
        draw of the vectorized path exactly.
        """
        batches = []
        for start in range(0, len(inputs), self.mc_batch_rows):
            chunk = inputs[start : start + self.mc_batch_rows]
            passes = [self.model.forward(chunk) for _ in range(self.n_samples)]
            batches.append(np.stack(passes, axis=0))
        return np.concatenate(batches, axis=1)

    def _forward_batched(self, inputs: np.ndarray) -> np.ndarray:
        outputs = []
        for start in range(0, len(inputs), self.batch_size):
            outputs.append(self.model.forward(inputs[start : start + self.batch_size]))
        return np.concatenate(outputs, axis=0)
