"""Shared scaffold for the baselines' cross-target stacked adaptation paths.

Every baseline that can run ``train_batching > 1`` exposes an
``adapt_many_stacked(pairs, source_data)`` class attribute: ``pairs`` is a
list of ``(adapter, start_model, target_inputs)`` jobs and the return value
is one ``(AdapterResult | None, error | None)`` per job, in input order.
The schemes share the same shape of work — group compatible jobs, run each
group through one :class:`~repro.engine.stacked.StackedFineTuneEngine`
stack, fall back to the serial :meth:`~repro.baselines.base.Adapter.adapt`
for singleton groups — and only differ in the group key (which
hyperparameters must match for the replicas to share one batched loop) and
the stacked step.  :func:`run_grouped` is that shared shape.

Grouping rules follow the bit-identity argument in ``nn/stacked.py``: a
stack never pads, so jobs can only share one when their engine-visible
shapes agree — dataset length (for the source-free schemes the target set
*is* the dataset; for MMD/ADV it sizes the per-batch target draw) and every
hyperparameter that feeds the shared engine/optimizer (epochs, batch size,
learning rate, scheme weights).  Seeds may differ freely: each replica
keeps its own generator.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..nn.data import ArrayDataset
from ..nn.models import RegressionModel
from .base import Adapter, AdapterResult

__all__ = ["StackPair", "run_grouped"]

#: One stacked-adaptation job: (adapter instance, start model, target inputs).
StackPair = tuple[Adapter, RegressionModel, np.ndarray]


def run_grouped(
    pairs: Sequence[StackPair],
    source_data: ArrayDataset | None,
    group_key: Callable[[Adapter, np.ndarray], tuple],
    adapt_stack: Callable[[list[StackPair], ArrayDataset | None], list[AdapterResult]],
) -> list[tuple[AdapterResult | None, Exception | None]]:
    """Group compatible jobs and adapt each group as one stack.

    Singleton groups take the adapter's serial path (trivially identical to
    a one-replica stack, minus the stacking overhead).  A failure while
    adapting a stack is attributed to every job in that stack; jobs in
    other groups are unaffected.
    """
    results: list[tuple[AdapterResult | None, Exception | None] | None] = [None] * len(pairs)
    groups: dict[tuple, list[int]] = {}
    for index, (adapter, _model, target_inputs) in enumerate(pairs):
        groups.setdefault(group_key(adapter, target_inputs), []).append(index)
    for indices in groups.values():
        if len(indices) == 1:
            index = indices[0]
            adapter, model, target_inputs = pairs[index]
            try:
                results[index] = (adapter.adapt(model, target_inputs, source_data), None)
            except Exception as exc:  # surfaced per job by the runtime layer
                results[index] = (None, exc)
            continue
        try:
            outcomes = adapt_stack([pairs[i] for i in indices], source_data)
        except Exception as exc:
            for index in indices:
                results[index] = (None, exc)
        else:
            for index, outcome in zip(indices, outcomes):
                results[index] = (outcome, None)
    return results  # type: ignore[return-value]
