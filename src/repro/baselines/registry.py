"""Registry of adaptation schemes used by the experiment harness."""

from __future__ import annotations

from typing import Callable

from ..core.config import TasfarConfig
from .adversarial import AdversarialUda
from .augfree import AugFree
from .base import Adapter
from .datafree import DataFree
from .mmd import MmdUda
from .source_only import SourceOnly
from .tasfar_adapter import TasfarAdapter

__all__ = ["SCHEME_NAMES", "make_adapter"]

#: Names of all comparison schemes, in the order the paper lists them.
SCHEME_NAMES = ("baseline", "mmd", "adv", "augfree", "datafree", "tasfar")

_FACTORIES: dict[str, Callable[..., Adapter]] = {
    "baseline": SourceOnly,
    "mmd": MmdUda,
    "adv": AdversarialUda,
    "augfree": AugFree,
    "datafree": DataFree,
    "tasfar": TasfarAdapter,
}


def make_adapter(name: str, **kwargs) -> Adapter:
    """Instantiate an adaptation scheme by name.

    ``tasfar`` accepts a ``config`` keyword (a :class:`TasfarConfig`); the
    other schemes accept their own constructor keywords (epochs, lr, ...).
    """
    try:
        factory = _FACTORIES[name.lower()]
    except KeyError as exc:
        raise ValueError(f"unknown scheme {name!r}; expected one of {SCHEME_NAMES}") from exc
    if factory is TasfarAdapter and "config" not in kwargs:
        kwargs = {"config": TasfarConfig(), **kwargs}
    return factory(**kwargs)
