"""Source-free UDA baseline: stored feature-statistics restoration.

Stands in for the paper's "Datafree" comparison scheme ([8], Bottom-Up Feature
Restoration): before deployment a compact per-unit statistic of the source
encoder features (mean, variance and a soft histogram) is stored; at the
target, the encoder is fine-tuned so the target feature statistics match the
stored source statistics, with the regression head frozen.  No source data is
needed at the target — only the statistic — which is why the paper treats this
family as "UDA without source data" but notes its limited adaptation power.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..engine.finetune import FineTuneEngine
from ..engine.stacked import StackedFineTuneEngine
from ..nn.data import ArrayDataset
from ..nn.models import RegressionModel
from ..nn.optim import Adam
from ..nn.stacked import StackedAdam, stack_modules, unstack_modules
from .base import Adapter, AdapterResult, clone_model
from .stacked import StackPair, run_grouped

__all__ = ["FeatureStatistics", "DataFree"]


@dataclass
class FeatureStatistics:
    """Per-unit statistics of the source encoder features."""

    mean: np.ndarray
    variance: np.ndarray
    histogram_edges: np.ndarray
    histograms: np.ndarray

    @classmethod
    def from_features(cls, features: np.ndarray, n_bins: int = 16) -> "FeatureStatistics":
        """Compute statistics from a matrix of source features ``(n, d)``."""
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or len(features) < 2:
            raise ValueError("features must be a (n_samples, n_units) matrix with n_samples >= 2")
        mean = features.mean(axis=0)
        variance = features.var(axis=0)
        low = float(features.min())
        high = float(features.max())
        if high <= low:
            high = low + 1.0
        edges = np.linspace(low, high, n_bins + 1)
        histograms = np.stack(
            [np.histogram(features[:, unit], bins=edges, density=False)[0] for unit in range(features.shape[1])]
        ).astype(np.float64)
        histograms /= np.maximum(histograms.sum(axis=1, keepdims=True), 1.0)
        return cls(mean=mean, variance=variance, histogram_edges=edges, histograms=histograms)


class DataFree(Adapter):
    """Align target feature statistics to the stored source statistics."""

    requires_source_data = False
    name = "datafree"

    def __init__(
        self,
        epochs: int = 15,
        lr: float = 1e-4,
        batch_size: int = 64,
        seed: int = 0,
    ) -> None:
        if epochs <= 0 or batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size
        self.seed = seed
        self.statistics: FeatureStatistics | None = None

    def fit_source_statistics(
        self, source_model: RegressionModel, source_inputs: np.ndarray
    ) -> FeatureStatistics:
        """Compute and store the source feature statistics (run before deployment)."""
        source_model.eval()
        features = source_model.features(np.asarray(source_inputs, dtype=np.float64))
        self.statistics = FeatureStatistics.from_features(features)
        return self.statistics

    def adapt(
        self,
        source_model: RegressionModel,
        target_inputs: np.ndarray,
        source_data: ArrayDataset | None = None,
    ) -> AdapterResult:
        if self.statistics is None:
            if source_data is None:
                raise ValueError(
                    "DataFree needs source feature statistics: call fit_source_statistics "
                    "before deployment or pass source_data"
                )
            self.fit_source_statistics(source_model, source_data.inputs)
        statistics = self.statistics
        target_inputs = np.asarray(target_inputs, dtype=np.float64)
        rng = np.random.default_rng(self.seed)

        model = clone_model(source_model)
        # Only the encoder is restored; the head keeps its source-domain fit.
        encoder_params = model.encoder.parameters()
        for param in model.head.parameters():
            param.trainable = False
        optimizer = Adam(model.parameters(), lr=self.lr)
        dataset = ArrayDataset(target_inputs, np.zeros((len(target_inputs), 1)))

        def step(inputs: np.ndarray, _targets, _weights) -> float:
            features = model.features(inputs)
            batch_mean = features.mean(axis=0)
            batch_var = features.var(axis=0)
            mean_diff = batch_mean - statistics.mean
            var_diff = batch_var - statistics.variance
            value = float((mean_diff**2).mean() + (var_diff**2).mean())
            n_samples, n_units = features.shape
            grad = (
                2.0 * mean_diff / n_samples
                + 2.0 * var_diff * 2.0 * (features - batch_mean) / n_samples
            ) / n_units
            model.backward_features(grad)
            return value

        # Batch statistics need at least two samples, so stray single-sample
        # trailing batches are skipped (min_batch_size).
        engine = FineTuneEngine(self.epochs, self.batch_size, min_batch_size=2)
        outcome = engine.run(
            model, dataset, optimizer, step, rng=rng, clip_parameters=encoder_params
        )
        for param in model.head.parameters():
            param.trainable = True
        return AdapterResult(
            target_model=model,
            losses=outcome.losses,
            diagnostics={"n_units": len(statistics.mean)},
        )

    @staticmethod
    def adapt_many_stacked(
        pairs: list[StackPair], source_data: ArrayDataset | None = None
    ) -> list[tuple[AdapterResult | None, Exception | None]]:
        """Adapt many targets at once, stacking compatible jobs (see ``baselines/stacked.py``)."""
        return run_grouped(pairs, source_data, _stack_key, _adapt_stack)


def _stack_key(adapter: DataFree, target_inputs: np.ndarray) -> tuple:
    return (adapter.epochs, adapter.batch_size, adapter.lr, len(target_inputs))


def _adapt_stack(pairs: list[StackPair], source_data: ArrayDataset | None) -> list[AdapterResult]:
    adapters = [pair[0] for pair in pairs]
    first = adapters[0]
    n_replicas = len(pairs)
    stats: list[FeatureStatistics] = []
    models: list[RegressionModel] = []
    datasets: list[ArrayDataset] = []
    rngs: list[np.random.Generator] = []
    for adapter, source_model, target_inputs in pairs:
        if adapter.statistics is None:
            if source_data is None:
                raise ValueError(
                    "DataFree needs source feature statistics: call fit_source_statistics "
                    "before deployment or pass source_data"
                )
            adapter.fit_source_statistics(source_model, source_data.inputs)
        stats.append(adapter.statistics)
        target_arr = np.asarray(target_inputs, dtype=np.float64)
        rngs.append(np.random.default_rng(adapter.seed))
        models.append(clone_model(source_model))
        datasets.append(ArrayDataset(target_arr, np.zeros((len(target_arr), 1))))
    stacked = stack_modules(models)
    # Only the encoder is restored; the head keeps its source-domain fit.
    encoder_params = stacked.encoder.parameters()
    for param in stacked.head.parameters():
        param.trainable = False
    optimizer = StackedAdam(stacked.parameters(), n_replicas, lr=first.lr)

    def step(inputs: np.ndarray, _targets, _weights) -> np.ndarray:
        features = stacked.features(inputs)
        values = np.empty(n_replicas, dtype=np.float64)
        grads = np.empty_like(features)
        for k, statistics in enumerate(stats):
            feats = features[k]
            batch_mean = feats.mean(axis=0)
            batch_var = feats.var(axis=0)
            mean_diff = batch_mean - statistics.mean
            var_diff = batch_var - statistics.variance
            values[k] = (mean_diff**2).mean() + (var_diff**2).mean()
            n_samples, n_units = feats.shape
            grads[k] = (
                2.0 * mean_diff / n_samples
                + 2.0 * var_diff * 2.0 * (feats - batch_mean) / n_samples
            ) / n_units
        stacked.backward_features(grads)
        return values

    engine = StackedFineTuneEngine(first.epochs, first.batch_size, min_batch_size=2)
    outcomes = engine.run(
        stacked, datasets, optimizer, step, rngs=rngs, clip_parameters=encoder_params
    )
    unstack_modules(stacked, models)
    return [
        AdapterResult(
            target_model=model,
            losses=outcome.losses,
            diagnostics={"n_units": len(statistics.mean)},
        )
        for model, outcome, statistics in zip(models, outcomes, stats)
    ]
