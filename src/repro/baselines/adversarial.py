"""Source-based UDA baseline: adversarial feature alignment (DANN/ADDA style).

Stands in for the paper's "ADV" comparison scheme ([35]): a domain
discriminator is trained to tell source features from target features while a
gradient-reversal layer pushes the encoder toward features the discriminator
cannot separate.  Requires source data at adaptation time.
"""

from __future__ import annotations

import numpy as np

from ..engine.finetune import FineTuneEngine
from ..nn.activations import ReLU
from ..nn.container import Sequential
from ..nn.data import ArrayDataset
from ..nn.gradient_reversal import GradientReversal
from ..nn.linear import Linear
from ..nn.losses import MSELoss
from ..nn.models import RegressionModel
from ..nn.optim import Adam
from .base import Adapter, AdapterResult, clone_model

__all__ = ["AdversarialUda", "logistic_loss"]


def logistic_loss(logits: np.ndarray, labels: np.ndarray) -> tuple[float, np.ndarray]:
    """Binary cross-entropy on logits; returns ``(value, grad_wrt_logits)``."""
    logits = np.asarray(logits, dtype=np.float64).ravel()
    labels = np.asarray(labels, dtype=np.float64).ravel()
    if logits.shape != labels.shape:
        raise ValueError("logits and labels must have the same length")
    probabilities = 1.0 / (1.0 + np.exp(-np.clip(logits, -60.0, 60.0)))
    eps = 1e-12
    value = float(
        -(labels * np.log(probabilities + eps) + (1 - labels) * np.log(1 - probabilities + eps)).mean()
    )
    grad = (probabilities - labels)[:, None] / len(logits)
    return value, grad


class AdversarialUda(Adapter):
    """Domain-adversarial re-training of the source model."""

    requires_source_data = True
    name = "adv"

    def __init__(
        self,
        epochs: int = 20,
        lr: float = 2e-4,
        batch_size: int = 32,
        adversarial_weight: float = 0.3,
        discriminator_hidden: int = 32,
        seed: int = 0,
    ) -> None:
        if epochs <= 0 or batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size
        self.adversarial_weight = adversarial_weight
        self.discriminator_hidden = discriminator_hidden
        self.seed = seed

    def _build_discriminator(self, feature_dim: int) -> Sequential:
        rng = np.random.default_rng(self.seed + 1)
        return Sequential(
            GradientReversal(self.adversarial_weight),
            Linear(feature_dim, self.discriminator_hidden, rng=rng, name="adv.disc0"),
            ReLU(),
            Linear(self.discriminator_hidden, 1, rng=rng, name="adv.disc1"),
        )

    def adapt(
        self,
        source_model: RegressionModel,
        target_inputs: np.ndarray,
        source_data: ArrayDataset | None = None,
    ) -> AdapterResult:
        if source_data is None:
            raise ValueError("adversarial UDA requires the labelled source dataset")
        target_inputs = np.asarray(target_inputs, dtype=np.float64)
        rng = np.random.default_rng(self.seed)
        model = clone_model(source_model)

        feature_dim = model.features(source_data.inputs[:2]).shape[1]
        discriminator = self._build_discriminator(feature_dim)
        optimizer = Adam(model.parameters() + discriminator.parameters(), lr=self.lr)
        loss = MSELoss()

        def step(inputs: np.ndarray, targets: np.ndarray, _weights) -> float:
            # Supervised loss on the source batch.
            predictions = model.forward(inputs)
            task_value, task_grad = loss(predictions, targets)
            model.backward(task_grad)

            # Domain-adversarial loss through the gradient-reversal layer.
            target_batch = target_inputs[
                rng.choice(len(target_inputs), size=min(len(inputs), len(target_inputs)), replace=False)
            ]
            domain_inputs = np.concatenate([inputs, target_batch], axis=0)
            domain_labels = np.concatenate([np.ones(len(inputs)), np.zeros(len(target_batch))])
            features = model.features(domain_inputs)
            logits = discriminator.forward(features)
            domain_value, domain_grad = logistic_loss(logits, domain_labels)
            grad_features = discriminator.backward(domain_grad)
            model.backward_features(grad_features)
            return task_value + domain_value

        # Dropout is disabled during re-training for the same reason as in the
        # other adapters (self-distillation noise on compact models).
        engine = FineTuneEngine(self.epochs, self.batch_size)
        outcome = engine.run(
            model, source_data, optimizer, step, rng=rng, extra_modules=(discriminator,)
        )
        return AdapterResult(
            target_model=model,
            losses=outcome.losses,
            diagnostics={"adversarial_weight": self.adversarial_weight},
        )
