"""Source-based UDA baseline: adversarial feature alignment (DANN/ADDA style).

Stands in for the paper's "ADV" comparison scheme ([35]): a domain
discriminator is trained to tell source features from target features while a
gradient-reversal layer pushes the encoder toward features the discriminator
cannot separate.  Requires source data at adaptation time.
"""

from __future__ import annotations

import numpy as np

from ..engine.finetune import FineTuneEngine
from ..engine.stacked import StackedFineTuneEngine
from ..nn.activations import ReLU
from ..nn.container import Sequential
from ..nn.data import ArrayDataset
from ..nn.gradient_reversal import GradientReversal
from ..nn.linear import Linear
from ..nn.losses import MSELoss
from ..nn.models import RegressionModel
from ..nn.optim import Adam
from ..nn.stacked import PerReplicaLoss, StackedAdam, stack_modules, unstack_modules
from .base import Adapter, AdapterResult, clone_model
from .stacked import StackPair, run_grouped

__all__ = ["AdversarialUda", "logistic_loss"]


def logistic_loss(logits: np.ndarray, labels: np.ndarray) -> tuple[float, np.ndarray]:
    """Binary cross-entropy on logits; returns ``(value, grad_wrt_logits)``."""
    logits = np.asarray(logits, dtype=np.float64).ravel()
    labels = np.asarray(labels, dtype=np.float64).ravel()
    if logits.shape != labels.shape:
        raise ValueError("logits and labels must have the same length")
    probabilities = 1.0 / (1.0 + np.exp(-np.clip(logits, -60.0, 60.0)))
    eps = 1e-12
    value = float(
        -(labels * np.log(probabilities + eps) + (1 - labels) * np.log(1 - probabilities + eps)).mean()
    )
    grad = (probabilities - labels)[:, None] / len(logits)
    return value, grad


class AdversarialUda(Adapter):
    """Domain-adversarial re-training of the source model."""

    requires_source_data = True
    name = "adv"

    def __init__(
        self,
        epochs: int = 20,
        lr: float = 2e-4,
        batch_size: int = 32,
        adversarial_weight: float = 0.3,
        discriminator_hidden: int = 32,
        seed: int = 0,
    ) -> None:
        if epochs <= 0 or batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size
        self.adversarial_weight = adversarial_weight
        self.discriminator_hidden = discriminator_hidden
        self.seed = seed

    def _build_discriminator(self, feature_dim: int) -> Sequential:
        rng = np.random.default_rng(self.seed + 1)
        return Sequential(
            GradientReversal(self.adversarial_weight),
            Linear(feature_dim, self.discriminator_hidden, rng=rng, name="adv.disc0"),
            ReLU(),
            Linear(self.discriminator_hidden, 1, rng=rng, name="adv.disc1"),
        )

    def adapt(
        self,
        source_model: RegressionModel,
        target_inputs: np.ndarray,
        source_data: ArrayDataset | None = None,
    ) -> AdapterResult:
        if source_data is None:
            raise ValueError("adversarial UDA requires the labelled source dataset")
        target_inputs = np.asarray(target_inputs, dtype=np.float64)
        rng = np.random.default_rng(self.seed)
        model = clone_model(source_model)

        feature_dim = model.features(source_data.inputs[:2]).shape[1]
        discriminator = self._build_discriminator(feature_dim)
        optimizer = Adam(model.parameters() + discriminator.parameters(), lr=self.lr)
        loss = MSELoss()

        def step(inputs: np.ndarray, targets: np.ndarray, _weights) -> float:
            # Supervised loss on the source batch.
            predictions = model.forward(inputs)
            task_value, task_grad = loss(predictions, targets)
            model.backward(task_grad)

            # Domain-adversarial loss through the gradient-reversal layer.
            target_batch = target_inputs[
                rng.choice(len(target_inputs), size=min(len(inputs), len(target_inputs)), replace=False)
            ]
            domain_inputs = np.concatenate([inputs, target_batch], axis=0)
            domain_labels = np.concatenate([np.ones(len(inputs)), np.zeros(len(target_batch))])
            features = model.features(domain_inputs)
            logits = discriminator.forward(features)
            domain_value, domain_grad = logistic_loss(logits, domain_labels)
            grad_features = discriminator.backward(domain_grad)
            model.backward_features(grad_features)
            return task_value + domain_value

        # Dropout is disabled during re-training for the same reason as in the
        # other adapters (self-distillation noise on compact models).
        engine = FineTuneEngine(self.epochs, self.batch_size)
        outcome = engine.run(
            model, source_data, optimizer, step, rng=rng, extra_modules=(discriminator,)
        )
        return AdapterResult(
            target_model=model,
            losses=outcome.losses,
            diagnostics={"adversarial_weight": self.adversarial_weight},
        )

    @staticmethod
    def adapt_many_stacked(
        pairs: list[StackPair], source_data: ArrayDataset | None = None
    ) -> list[tuple[AdapterResult | None, Exception | None]]:
        """Adapt many targets at once, stacking compatible jobs (see ``baselines/stacked.py``)."""
        if source_data is None:
            raise ValueError("adversarial UDA requires the labelled source dataset")
        return run_grouped(pairs, source_data, _stack_key, _adapt_stack)


def _stack_key(adapter: AdversarialUda, target_inputs: np.ndarray) -> tuple:
    return (
        adapter.epochs,
        adapter.batch_size,
        adapter.lr,
        adapter.adversarial_weight,
        adapter.discriminator_hidden,
        len(target_inputs),
    )


def _adapt_stack(pairs: list[StackPair], source_data: ArrayDataset) -> list[AdapterResult]:
    adapters = [pair[0] for pair in pairs]
    first = adapters[0]
    n_replicas = len(pairs)
    target_arrs = [np.asarray(pair[2], dtype=np.float64) for pair in pairs]
    rngs = [np.random.default_rng(adapter.seed) for adapter in adapters]
    models = [clone_model(pair[1]) for pair in pairs]
    # One discriminator per replica (its own seed stream), stacked alongside
    # the models; the gradient-reversal scale is uniform within a group.
    discriminators = [
        adapter._build_discriminator(model.features(source_data.inputs[:2]).shape[1])
        for adapter, model in zip(adapters, models)
    ]
    stacked = stack_modules(models)
    stacked_disc = stack_modules(discriminators)
    optimizer = StackedAdam(
        stacked.parameters() + stacked_disc.parameters(), n_replicas, lr=first.lr
    )
    per_loss = PerReplicaLoss(MSELoss())
    n_target = len(target_arrs[0])

    def step(inputs: np.ndarray, targets: np.ndarray, _weights) -> np.ndarray:
        # Supervised loss on the (replicated) source batch.
        predictions = stacked.forward(inputs)
        task_values, task_grads = per_loss(predictions, targets)
        stacked.backward(task_grads)

        # Domain-adversarial loss: per-replica target draws, batched feature
        # and discriminator gemms, per-replica logistic losses on contiguous
        # slices.
        size = min(inputs.shape[1], n_target)
        target_batch = np.stack(
            [
                arr[rng.choice(n_target, size=size, replace=False)]
                for arr, rng in zip(target_arrs, rngs)
            ]
        )
        domain_inputs = np.concatenate([inputs, target_batch], axis=1)
        domain_labels = np.concatenate([np.ones(inputs.shape[1]), np.zeros(size)])
        features = stacked.features(domain_inputs)
        logits = stacked_disc.forward(features)
        domain_values = np.empty(n_replicas, dtype=np.float64)
        domain_grads = np.empty_like(logits)
        for k in range(n_replicas):
            domain_values[k], domain_grads[k] = logistic_loss(logits[k], domain_labels)
        grad_features = stacked_disc.backward(domain_grads)
        stacked.backward_features(grad_features)
        return task_values + domain_values

    engine = StackedFineTuneEngine(first.epochs, first.batch_size)
    outcomes = engine.run(
        stacked,
        [source_data] * n_replicas,
        optimizer,
        step,
        rngs=rngs,
        extra_modules=(stacked_disc,),
    )
    unstack_modules(stacked, models)
    return [
        AdapterResult(
            target_model=model,
            losses=outcome.losses,
            diagnostics={"adversarial_weight": adapter.adversarial_weight},
        )
        for adapter, model, outcome in zip(adapters, models, outcomes)
    ]
