"""UDA baselines the paper compares TASFAR against."""

from .adversarial import AdversarialUda, logistic_loss
from .augfree import AugFree, variance_perturbation
from .base import Adapter, AdapterResult, clone_model
from .datafree import DataFree, FeatureStatistics
from .mmd import MmdUda, rbf_mmd
from .registry import SCHEME_NAMES, make_adapter
from .source_only import SourceOnly
from .tasfar_adapter import TasfarAdapter

__all__ = [
    "Adapter",
    "AdapterResult",
    "AdversarialUda",
    "AugFree",
    "DataFree",
    "FeatureStatistics",
    "MmdUda",
    "SCHEME_NAMES",
    "SourceOnly",
    "TasfarAdapter",
    "clone_model",
    "logistic_loss",
    "make_adapter",
    "rbf_mmd",
    "variance_perturbation",
]
