"""Common interface for the UDA baselines compared against TASFAR.

Every baseline implements :meth:`Adapter.adapt`, taking the trained source
model plus whatever data its setting allows it to see:

* **source-based** UDA (MMD, ADV) may use the labelled source dataset and the
  unlabeled target adaptation set;
* **source-free** UDA (Datafree, AUGfree, TASFAR itself) may only use the
  source model — plus, for Datafree, a compact statistic computed on the
  source side before deployment — and the unlabeled target adaptation set.

The adapters never read target labels.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

import numpy as np

from ..nn.data import ArrayDataset
from ..nn.models import RegressionModel

__all__ = ["AdapterResult", "Adapter", "clone_model"]


@dataclass
class AdapterResult:
    """Outcome of one baseline adaptation run."""

    target_model: RegressionModel
    losses: list[float] = field(default_factory=list)
    diagnostics: dict = field(default_factory=dict)


class Adapter:
    """Interface implemented by every UDA baseline."""

    #: whether the adapter needs the labelled source dataset at adaptation time
    requires_source_data: bool = False
    name: str = "adapter"

    def adapt(
        self,
        source_model: RegressionModel,
        target_inputs: np.ndarray,
        source_data: ArrayDataset | None = None,
    ) -> AdapterResult:
        """Adapt ``source_model`` to the target domain.

        Parameters
        ----------
        source_model:
            The trained source model (never modified in place).
        target_inputs:
            Unlabeled target adaptation inputs.
        source_data:
            Labelled source data; only provided to source-based adapters.
        """
        raise NotImplementedError


def clone_model(model: RegressionModel) -> RegressionModel:
    """Deep copy of a model, used so adapters never mutate the source model."""
    return copy.deepcopy(model)
