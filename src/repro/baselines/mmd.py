"""Source-based UDA baseline: maximum mean discrepancy (MMD) feature alignment.

Stands in for the paper's "MMD" comparison scheme ([34], Joint Adaptation
Networks style): the model is re-trained on the labelled source data while an
RBF-kernel MMD penalty pulls the encoder features of source and target batches
together.  Requires source data at adaptation time, so it is *not* source-free
— it is the upper-bound family TASFAR is compared against.
"""

from __future__ import annotations

import numpy as np

from ..engine.finetune import FineTuneEngine
from ..engine.stacked import StackedFineTuneEngine
from ..nn.data import ArrayDataset
from ..nn.losses import MSELoss
from ..nn.models import RegressionModel
from ..nn.optim import Adam
from ..nn.stacked import PerReplicaLoss, StackedAdam, stack_modules, unstack_modules
from .base import Adapter, AdapterResult, clone_model
from .stacked import StackPair, run_grouped

__all__ = ["rbf_mmd", "MmdUda"]


def _pairwise_sq_dists(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return ((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=2)


def rbf_mmd(
    source_features: np.ndarray,
    target_features: np.ndarray,
    bandwidth: float | None = None,
) -> tuple[float, np.ndarray, np.ndarray]:
    """Squared MMD with an RBF kernel and its gradients w.r.t. both feature sets.

    Returns ``(mmd2, grad_source, grad_target)``.  The bandwidth defaults to
    the median pairwise distance (median heuristic).
    """
    source_features = np.asarray(source_features, dtype=np.float64)
    target_features = np.asarray(target_features, dtype=np.float64)
    n_source, n_target = len(source_features), len(target_features)
    if n_source < 2 or n_target < 2:
        raise ValueError("MMD needs at least two samples per domain")

    d_ss = _pairwise_sq_dists(source_features, source_features)
    d_tt = _pairwise_sq_dists(target_features, target_features)
    d_st = _pairwise_sq_dists(source_features, target_features)
    if bandwidth is None:
        all_dists = np.concatenate([d_ss.ravel(), d_tt.ravel(), d_st.ravel()])
        positive = all_dists[all_dists > 0]
        bandwidth = float(np.sqrt(np.median(positive) / 2.0)) if len(positive) else 1.0
    gamma = 1.0 / (2.0 * bandwidth**2 + 1e-12)

    k_ss = np.exp(-gamma * d_ss)
    k_tt = np.exp(-gamma * d_tt)
    k_st = np.exp(-gamma * d_st)
    mmd2 = float(k_ss.mean() + k_tt.mean() - 2.0 * k_st.mean())

    # d k(a, b) / d a = -2 * gamma * k(a, b) * (a - b)
    diff_ss = source_features[:, None, :] - source_features[None, :, :]
    diff_tt = target_features[:, None, :] - target_features[None, :, :]
    diff_st = source_features[:, None, :] - target_features[None, :, :]

    grad_source = (
        (-2.0 * gamma * k_ss[:, :, None] * diff_ss).sum(axis=1) * 2.0 / (n_source**2)
        - (-2.0 * gamma * k_st[:, :, None] * diff_st).sum(axis=1) * 2.0 / (n_source * n_target)
    )
    grad_target = (
        (-2.0 * gamma * k_tt[:, :, None] * diff_tt).sum(axis=1) * 2.0 / (n_target**2)
        - (2.0 * gamma * k_st[:, :, None] * diff_st).sum(axis=0) * 2.0 / (n_source * n_target)
    )
    return mmd2, grad_source, grad_target


class MmdUda(Adapter):
    """Re-train on source data with an MMD feature-alignment penalty."""

    requires_source_data = True
    name = "mmd"

    def __init__(
        self,
        epochs: int = 20,
        lr: float = 2e-4,
        batch_size: int = 32,
        mmd_weight: float = 0.5,
        seed: int = 0,
    ) -> None:
        if epochs <= 0 or batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size
        self.mmd_weight = mmd_weight
        self.seed = seed

    def adapt(
        self,
        source_model: RegressionModel,
        target_inputs: np.ndarray,
        source_data: ArrayDataset | None = None,
    ) -> AdapterResult:
        if source_data is None:
            raise ValueError("MMD-based UDA requires the labelled source dataset")
        target_inputs = np.asarray(target_inputs, dtype=np.float64)
        rng = np.random.default_rng(self.seed)
        model = clone_model(source_model)
        optimizer = Adam(model.parameters(), lr=self.lr)
        loss = MSELoss()

        def step(inputs: np.ndarray, targets: np.ndarray, _weights) -> float:
            # Supervised loss on the source batch.
            predictions = model.forward(inputs)
            task_value, task_grad = loss(predictions, targets)
            model.backward(task_grad)

            # MMD alignment between source and target encoder features.
            target_batch = target_inputs[
                rng.choice(len(target_inputs), size=min(len(inputs), len(target_inputs)), replace=False)
            ]
            source_features = model.features(inputs)
            target_features = model.features(target_batch)
            mmd_value, grad_source, grad_target = rbf_mmd(source_features, target_features)
            # The encoder cache currently holds the target forward pass.
            model.backward_features(self.mmd_weight * grad_target)
            model.features(inputs)  # re-run the forward pass to restore the source cache
            model.backward_features(self.mmd_weight * grad_source)
            return task_value + self.mmd_weight * mmd_value

        # Fine-tuning with dropout enabled adds self-distillation noise on the
        # compact models of this reproduction (see TasfarConfig), so the
        # re-training is done with dropout disabled (the engine default).
        engine = FineTuneEngine(self.epochs, self.batch_size)
        outcome = engine.run(model, source_data, optimizer, step, rng=rng)
        return AdapterResult(
            target_model=model, losses=outcome.losses, diagnostics={"mmd_weight": self.mmd_weight}
        )

    @staticmethod
    def adapt_many_stacked(
        pairs: list[StackPair], source_data: ArrayDataset | None = None
    ) -> list[tuple[AdapterResult | None, Exception | None]]:
        """Adapt many targets at once, stacking compatible jobs (see ``baselines/stacked.py``)."""
        if source_data is None:
            raise ValueError("MMD-based UDA requires the labelled source dataset")
        return run_grouped(pairs, source_data, _stack_key, _adapt_stack)


def _stack_key(adapter: MmdUda, target_inputs: np.ndarray) -> tuple:
    return (
        adapter.epochs,
        adapter.batch_size,
        adapter.lr,
        adapter.mmd_weight,
        len(target_inputs),
    )


def _adapt_stack(pairs: list[StackPair], source_data: ArrayDataset) -> list[AdapterResult]:
    adapters = [pair[0] for pair in pairs]
    first = adapters[0]
    n_replicas = len(pairs)
    target_arrs = [np.asarray(pair[2], dtype=np.float64) for pair in pairs]
    rngs = [np.random.default_rng(adapter.seed) for adapter in adapters]
    models = [clone_model(pair[1]) for pair in pairs]
    stacked = stack_modules(models)
    optimizer = StackedAdam(stacked.parameters(), n_replicas, lr=first.lr)
    per_loss = PerReplicaLoss(MSELoss())
    n_target = len(target_arrs[0])
    mmd_weight = first.mmd_weight

    def step(inputs: np.ndarray, targets: np.ndarray, _weights) -> np.ndarray:
        # Supervised loss on the (replicated) source batch.
        predictions = stacked.forward(inputs)
        task_values, task_grads = per_loss(predictions, targets)
        stacked.backward(task_grads)

        # MMD alignment, per replica: each replica draws its own target
        # batch from its own generator (same draws as its serial run), the
        # feature forwards are batched gemms, and the kernel math runs on
        # contiguous per-replica slices.
        size = min(inputs.shape[1], n_target)
        target_batch = np.stack(
            [
                arr[rng.choice(n_target, size=size, replace=False)]
                for arr, rng in zip(target_arrs, rngs)
            ]
        )
        source_features = stacked.features(inputs)
        target_features = stacked.features(target_batch)
        mmd_values = np.empty(n_replicas, dtype=np.float64)
        grad_source = np.empty_like(source_features)
        grad_target = np.empty_like(target_features)
        for k in range(n_replicas):
            mmd_values[k], grad_source[k], grad_target[k] = rbf_mmd(
                source_features[k], target_features[k]
            )
        # The encoder cache currently holds the target forward pass.
        stacked.backward_features(mmd_weight * grad_target)
        stacked.features(inputs)  # re-run the forward pass to restore the source cache
        stacked.backward_features(mmd_weight * grad_source)
        return task_values + mmd_weight * mmd_values

    engine = StackedFineTuneEngine(first.epochs, first.batch_size)
    outcomes = engine.run(
        stacked, [source_data] * n_replicas, optimizer, step, rngs=rngs
    )
    unstack_modules(stacked, models)
    return [
        AdapterResult(
            target_model=model,
            losses=outcome.losses,
            diagnostics={"mmd_weight": adapter.mmd_weight},
        )
        for adapter, model, outcome in zip(adapters, models, outcomes)
    ]
