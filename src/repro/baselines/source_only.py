"""Trivial baseline: deploy the source model unchanged.

This is the "Baseline" row of the paper's tables — every error reduction is
reported relative to it.
"""

from __future__ import annotations

import numpy as np

from ..nn.data import ArrayDataset
from ..nn.models import RegressionModel
from .base import Adapter, AdapterResult, clone_model
from .stacked import StackPair

__all__ = ["SourceOnly"]


class SourceOnly(Adapter):
    """No adaptation: the target model is a copy of the source model."""

    requires_source_data = False
    name = "baseline"

    def adapt(
        self,
        source_model: RegressionModel,
        target_inputs: np.ndarray,
        source_data: ArrayDataset | None = None,
    ) -> AdapterResult:
        del target_inputs, source_data
        return AdapterResult(target_model=clone_model(source_model))

    @staticmethod
    def adapt_many_stacked(
        pairs: list[StackPair], source_data: ArrayDataset | None = None
    ) -> list[tuple[AdapterResult | None, Exception | None]]:
        """No training loop to batch: clone per job (kept for uniform dispatch)."""
        results: list[tuple[AdapterResult | None, Exception | None]] = []
        for adapter, model, target_inputs in pairs:
            try:
                results.append((adapter.adapt(model, target_inputs, source_data), None))
            except Exception as exc:
                results.append((None, exc))
        return results
