"""Trivial baseline: deploy the source model unchanged.

This is the "Baseline" row of the paper's tables — every error reduction is
reported relative to it.
"""

from __future__ import annotations

import numpy as np

from ..nn.data import ArrayDataset
from ..nn.models import RegressionModel
from .base import Adapter, AdapterResult, clone_model

__all__ = ["SourceOnly"]


class SourceOnly(Adapter):
    """No adaptation: the target model is a copy of the source model."""

    requires_source_data = False
    name = "baseline"

    def adapt(
        self,
        source_model: RegressionModel,
        target_inputs: np.ndarray,
        source_data: ArrayDataset | None = None,
    ) -> AdapterResult:
        del target_inputs, source_data
        return AdapterResult(target_model=clone_model(source_model))
