"""Source-free UDA baseline: augmentation-consistency training.

Stands in for the paper's "AUGfree" comparison scheme ([12]): the domain gap
is *presumed* to look like a particular input perturbation — the paper follows
the original work and uses variance perturbation — and the model is fine-tuned
so its predictions are invariant to that perturbation on the unlabeled target
data.  When the presumed perturbation matches the real domain gap this works
well; when it does not (which is the common, target-agnostic case), the
adaptation brings little, which is the behaviour the paper reports.
"""

from __future__ import annotations

import numpy as np

from ..engine.finetune import FineTuneEngine
from ..engine.stacked import StackedFineTuneEngine
from ..nn.data import ArrayDataset
from ..nn.losses import MSELoss
from ..nn.models import RegressionModel
from ..nn.optim import Adam
from ..nn.stacked import PerReplicaLoss, StackedAdam, stack_modules, unstack_modules
from .base import Adapter, AdapterResult, clone_model
from .stacked import StackPair, run_grouped

__all__ = ["AugFree", "variance_perturbation"]


def variance_perturbation(
    inputs: np.ndarray, rng: np.random.Generator, strength: float = 0.1
) -> np.ndarray:
    """Variance perturbation augmentation.

    Rescales every sample's deviation from its own mean by a random factor and
    adds a small amount of proportional noise — the augmentation family used
    by the original AUGfree work for regression inputs.
    """
    inputs = np.asarray(inputs, dtype=np.float64)
    flat = inputs.reshape(len(inputs), -1)
    sample_mean = flat.mean(axis=1, keepdims=True)
    scales = rng.uniform(1.0 - strength, 1.0 + strength, size=(len(inputs), 1))
    perturbed = sample_mean + scales * (flat - sample_mean)
    perturbed += rng.normal(0.0, strength * (flat.std() + 1e-8), size=flat.shape)
    return perturbed.reshape(inputs.shape)


class AugFree(Adapter):
    """Fine-tune for prediction consistency under variance perturbation."""

    requires_source_data = False
    name = "augfree"

    def __init__(
        self,
        epochs: int = 15,
        lr: float = 5e-4,
        batch_size: int = 32,
        strength: float = 0.1,
        seed: int = 0,
    ) -> None:
        if epochs <= 0 or batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size
        self.strength = strength
        self.seed = seed

    def adapt(
        self,
        source_model: RegressionModel,
        target_inputs: np.ndarray,
        source_data: ArrayDataset | None = None,
    ) -> AdapterResult:
        del source_data  # source-free: never used
        target_inputs = np.asarray(target_inputs, dtype=np.float64)
        rng = np.random.default_rng(self.seed)

        model = clone_model(source_model)
        # The teacher signal is the source model's own prediction on the clean
        # target input; the student sees the perturbed input.
        source_model.eval()
        teacher = source_model.forward(target_inputs)

        optimizer = Adam(model.parameters(), lr=self.lr)
        loss = MSELoss()
        dataset = ArrayDataset(target_inputs, teacher)

        def step(inputs: np.ndarray, teacher_batch: np.ndarray, _weights) -> float:
            augmented = variance_perturbation(inputs, rng, self.strength)
            predictions = model.forward(augmented)
            value, grad = loss(predictions, teacher_batch)
            model.backward(grad)
            return value

        engine = FineTuneEngine(self.epochs, self.batch_size)
        outcome = engine.run(model, dataset, optimizer, step, rng=rng)
        return AdapterResult(
            target_model=model,
            losses=outcome.losses,
            diagnostics={"strength": self.strength},
        )

    @staticmethod
    def adapt_many_stacked(
        pairs: list[StackPair], source_data: ArrayDataset | None = None
    ) -> list[tuple[AdapterResult | None, Exception | None]]:
        """Adapt many targets at once, stacking compatible jobs (see ``baselines/stacked.py``)."""
        del source_data  # source-free: never used
        return run_grouped(pairs, None, _stack_key, _adapt_stack)


def _stack_key(adapter: AugFree, target_inputs: np.ndarray) -> tuple:
    return (
        adapter.epochs,
        adapter.batch_size,
        adapter.lr,
        adapter.strength,
        len(target_inputs),
    )


def _adapt_stack(pairs: list[StackPair], source_data: ArrayDataset | None) -> list[AdapterResult]:
    del source_data
    adapters = [pair[0] for pair in pairs]
    first = adapters[0]
    n_replicas = len(pairs)
    rngs = [np.random.default_rng(adapter.seed) for adapter in adapters]
    models = [clone_model(pair[1]) for pair in pairs]
    datasets = []
    for (_adapter, source_model, _inputs), target_arr in zip(
        pairs, (np.asarray(pair[2], dtype=np.float64) for pair in pairs)
    ):
        # Per-replica teacher signal from the replica's own source model
        # (serial pre-work: a plain 2-D forward, trivially bit-identical).
        source_model.eval()
        datasets.append(ArrayDataset(target_arr, source_model.forward(target_arr)))
    stacked = stack_modules(models)
    optimizer = StackedAdam(stacked.parameters(), n_replicas, lr=first.lr)
    per_loss = PerReplicaLoss(MSELoss())
    strength = first.strength

    def step(inputs: np.ndarray, teacher_batch: np.ndarray, _weights) -> np.ndarray:
        # Each replica perturbs its own batch slice with its own generator
        # (same draw shapes and order as its serial run).
        augmented = np.empty_like(inputs)
        for k, rng in enumerate(rngs):
            augmented[k] = variance_perturbation(inputs[k], rng, strength)
        predictions = stacked.forward(augmented)
        values, grads = per_loss(predictions, teacher_batch)
        stacked.backward(grads)
        return values

    engine = StackedFineTuneEngine(first.epochs, first.batch_size)
    outcomes = engine.run(stacked, datasets, optimizer, step, rngs=rngs)
    unstack_modules(stacked, models)
    return [
        AdapterResult(
            target_model=model,
            losses=outcome.losses,
            diagnostics={"strength": adapter.strength},
        )
        for adapter, model, outcome in zip(adapters, models, outcomes)
    ]
