"""Source-free UDA baseline: augmentation-consistency training.

Stands in for the paper's "AUGfree" comparison scheme ([12]): the domain gap
is *presumed* to look like a particular input perturbation — the paper follows
the original work and uses variance perturbation — and the model is fine-tuned
so its predictions are invariant to that perturbation on the unlabeled target
data.  When the presumed perturbation matches the real domain gap this works
well; when it does not (which is the common, target-agnostic case), the
adaptation brings little, which is the behaviour the paper reports.
"""

from __future__ import annotations

import numpy as np

from ..engine.finetune import FineTuneEngine
from ..nn.data import ArrayDataset
from ..nn.losses import MSELoss
from ..nn.models import RegressionModel
from ..nn.optim import Adam
from .base import Adapter, AdapterResult, clone_model

__all__ = ["AugFree", "variance_perturbation"]


def variance_perturbation(
    inputs: np.ndarray, rng: np.random.Generator, strength: float = 0.1
) -> np.ndarray:
    """Variance perturbation augmentation.

    Rescales every sample's deviation from its own mean by a random factor and
    adds a small amount of proportional noise — the augmentation family used
    by the original AUGfree work for regression inputs.
    """
    inputs = np.asarray(inputs, dtype=np.float64)
    flat = inputs.reshape(len(inputs), -1)
    sample_mean = flat.mean(axis=1, keepdims=True)
    scales = rng.uniform(1.0 - strength, 1.0 + strength, size=(len(inputs), 1))
    perturbed = sample_mean + scales * (flat - sample_mean)
    perturbed += rng.normal(0.0, strength * (flat.std() + 1e-8), size=flat.shape)
    return perturbed.reshape(inputs.shape)


class AugFree(Adapter):
    """Fine-tune for prediction consistency under variance perturbation."""

    requires_source_data = False
    name = "augfree"

    def __init__(
        self,
        epochs: int = 15,
        lr: float = 5e-4,
        batch_size: int = 32,
        strength: float = 0.1,
        seed: int = 0,
    ) -> None:
        if epochs <= 0 or batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size
        self.strength = strength
        self.seed = seed

    def adapt(
        self,
        source_model: RegressionModel,
        target_inputs: np.ndarray,
        source_data: ArrayDataset | None = None,
    ) -> AdapterResult:
        del source_data  # source-free: never used
        target_inputs = np.asarray(target_inputs, dtype=np.float64)
        rng = np.random.default_rng(self.seed)

        model = clone_model(source_model)
        # The teacher signal is the source model's own prediction on the clean
        # target input; the student sees the perturbed input.
        source_model.eval()
        teacher = source_model.forward(target_inputs)

        optimizer = Adam(model.parameters(), lr=self.lr)
        loss = MSELoss()
        dataset = ArrayDataset(target_inputs, teacher)

        def step(inputs: np.ndarray, teacher_batch: np.ndarray, _weights) -> float:
            augmented = variance_perturbation(inputs, rng, self.strength)
            predictions = model.forward(augmented)
            value, grad = loss(predictions, teacher_batch)
            model.backward(grad)
            return value

        engine = FineTuneEngine(self.epochs, self.batch_size)
        outcome = engine.run(model, dataset, optimizer, step, rng=rng)
        return AdapterResult(
            target_model=model,
            losses=outcome.losses,
            diagnostics={"strength": self.strength},
        )
