"""TASFAR wrapped in the common :class:`~repro.baselines.base.Adapter` interface.

This lets the experiment harness treat TASFAR exactly like the comparison
schemes when building tables: the wrapper performs the source-side calibration
(``Q_s`` and ``tau``) with the source *calibration* split and then runs the
target-side adaptation with unlabeled target data only.
"""

from __future__ import annotations

import numpy as np

from ..core.adapter import SourceCalibration, Tasfar
from ..core.config import TasfarConfig
from ..nn.data import ArrayDataset
from ..nn.models import RegressionModel
from .base import Adapter, AdapterResult

__all__ = ["TasfarAdapter"]


class TasfarAdapter(Adapter):
    """Adapter-interface wrapper around :class:`repro.core.Tasfar`."""

    requires_source_data = False
    name = "tasfar"

    def __init__(self, config: TasfarConfig | None = None) -> None:
        self.tasfar = Tasfar(config)
        self.calibration: SourceCalibration | None = None

    def calibrate(
        self,
        source_model: RegressionModel,
        source_inputs: np.ndarray,
        source_labels: np.ndarray,
    ) -> SourceCalibration:
        """Run the source-side calibration (before deployment)."""
        self.calibration = self.tasfar.calibrate_on_source(source_model, source_inputs, source_labels)
        return self.calibration

    def adapt(
        self,
        source_model: RegressionModel,
        target_inputs: np.ndarray,
        source_data: ArrayDataset | None = None,
    ) -> AdapterResult:
        if self.calibration is None:
            if source_data is None:
                raise ValueError(
                    "TASFAR needs its source-side calibration: call calibrate() before "
                    "deployment or pass source_data"
                )
            self.calibrate(source_model, source_data.inputs, source_data.targets)
        result = self.tasfar.adapt(source_model, target_inputs, self.calibration)
        return AdapterResult(
            target_model=result.target_model,
            losses=result.losses,
            diagnostics={
                "uncertain_ratio": result.split.uncertain_ratio,
                "n_confident": result.split.n_confident,
                "n_uncertain": result.split.n_uncertain,
                "stopped_epoch": result.stopped_epoch,
                "adaptation_result": result,
            },
        )
