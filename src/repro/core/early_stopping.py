"""Loss-drop early stopping (moved to :mod:`repro.engine.early_stopping`).

The stopper is consumed by the shared :class:`~repro.engine.FineTuneEngine`,
which sits *below* ``core`` in the layering, so the implementation lives in
the engine package; this module re-exports it for the historical
``repro.core.LossDropEarlyStopper`` import path.
"""

from ..engine.early_stopping import LossDropEarlyStopper

__all__ = ["LossDropEarlyStopper"]
