"""Confidence classifier (Algorithm 1 of the paper).

The classifier splits target data into *confident* and *uncertain* sets using
a threshold ``tau`` on prediction uncertainty.  ``tau`` is chosen on the
**source** data so that a fraction ``eta`` of source predictions counts as
confident — the idea being that a well-trained source model should be
confident about most of its own training distribution, and the same threshold
transfers to target data because the same model produces both uncertainties.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ConfidenceSplit", "ConfidenceClassifier"]


@dataclass
class ConfidenceSplit:
    """Index split of a batch into confident and uncertain samples."""

    confident_indices: np.ndarray
    uncertain_indices: np.ndarray
    threshold: float

    @property
    def n_confident(self) -> int:
        """Number of confident samples."""
        return len(self.confident_indices)

    @property
    def n_uncertain(self) -> int:
        """Number of uncertain samples."""
        return len(self.uncertain_indices)

    @property
    def uncertain_ratio(self) -> float:
        """Fraction of samples classified as uncertain (Fig. 16)."""
        total = self.n_confident + self.n_uncertain
        return self.n_uncertain / total if total else 0.0


class ConfidenceClassifier:
    """Threshold-based split of predictions into confident / uncertain.

    Parameters
    ----------
    confidence_ratio:
        ``eta``: the quantile of source uncertainties used as threshold.
    """

    def __init__(self, confidence_ratio: float = 0.9) -> None:
        if not 0.0 < confidence_ratio < 1.0:
            raise ValueError("confidence_ratio must be in (0, 1)")
        self.confidence_ratio = confidence_ratio
        self.threshold: float | None = None

    def fit(self, source_uncertainties: np.ndarray) -> "ConfidenceClassifier":
        """Choose ``tau`` as the ``eta``-quantile of source uncertainties."""
        source_uncertainties = np.asarray(source_uncertainties, dtype=np.float64).ravel()
        if len(source_uncertainties) == 0:
            raise ValueError("cannot fit the confidence classifier on zero samples")
        self.threshold = float(np.quantile(source_uncertainties, self.confidence_ratio))
        return self

    def split(self, uncertainties: np.ndarray) -> ConfidenceSplit:
        """Split ``uncertainties`` into confident (u <= tau) and uncertain (u > tau)."""
        if self.threshold is None:
            raise RuntimeError("the confidence classifier must be fitted before splitting")
        uncertainties = np.asarray(uncertainties, dtype=np.float64).ravel()
        confident = np.flatnonzero(uncertainties <= self.threshold)
        uncertain = np.flatnonzero(uncertainties > self.threshold)
        return ConfidenceSplit(
            confident_indices=confident,
            uncertain_indices=uncertain,
            threshold=self.threshold,
        )
