"""Label distribution estimator (Algorithm 2 of the paper).

Builds a :class:`~repro.core.density_map.LabelDensityMap` from the source
model's *confident* predictions on target data: each confident prediction
contributes an instance-label distribution centred on the prediction with a
spread given by the calibrated uncertainty curve ``Q_s``.
"""

from __future__ import annotations

import numpy as np

from ..uncertainty.calibration import UncertaintyCalibrator
from ..uncertainty.error_models import ErrorModel, get_error_model
from .density_map import LabelDensityMap

__all__ = ["LabelDistributionEstimator"]


class LabelDistributionEstimator:
    """Accumulate confident instance-label distributions into a density map.

    Parameters
    ----------
    calibrators:
        One :class:`UncertaintyCalibrator` per label dimension (``Q_s``).
    grid_size:
        Cell size per label dimension; scalars are broadcast.  ``None``
        selects ``auto_grid_bins`` cells across the observed prediction range.
    auto_grid_bins:
        Number of cells per dimension used in automatic grid sizing.
    margin_sigmas:
        The map range extends this many (maximum) sigmas beyond the range of
        confident predictions so that tails are not truncated.
    error_model:
        Name of the instance-label distribution family.
    """

    def __init__(
        self,
        calibrators: list[UncertaintyCalibrator],
        grid_size: float | tuple[float, ...] | None = None,
        auto_grid_bins: int = 25,
        margin_sigmas: float = 3.0,
        error_model: str | ErrorModel = "gaussian",
    ) -> None:
        if not calibrators:
            raise ValueError("at least one calibrator (one per label dimension) is required")
        self.calibrators = list(calibrators)
        self.grid_size = grid_size
        self.auto_grid_bins = auto_grid_bins
        self.margin_sigmas = margin_sigmas
        self.error_model = (
            error_model if isinstance(error_model, ErrorModel) else get_error_model(error_model)
        )

    @property
    def n_dims(self) -> int:
        """Number of label dimensions handled by this estimator."""
        return len(self.calibrators)

    def sigma_for(self, uncertainties: np.ndarray) -> np.ndarray:
        """Evaluate ``Q_s`` per label dimension for a batch of uncertainties.

        ``uncertainties`` is the scalar prediction uncertainty ``u_t`` per
        sample (shape ``(n_samples,)``); every per-dimension calibrator is
        evaluated on it, following the paper's single-uncertainty formulation,
        and the result has shape ``(n_samples, n_dims)``.
        """
        uncertainties = np.asarray(uncertainties, dtype=np.float64).ravel()
        sigmas = np.column_stack(
            [self.calibrators[dim](uncertainties) for dim in range(self.n_dims)]
        )
        return sigmas

    def build_grid(self, predictions: np.ndarray, sigmas: np.ndarray) -> LabelDensityMap:
        """Construct an empty density map covering the confident predictions."""
        predictions = np.atleast_2d(np.asarray(predictions, dtype=np.float64))
        sigmas = np.atleast_2d(np.asarray(sigmas, dtype=np.float64))
        max_sigma = sigmas.max(axis=0)
        lower = predictions.min(axis=0) - self.margin_sigmas * max_sigma
        upper = predictions.max(axis=0) + self.margin_sigmas * max_sigma
        # Guard against a degenerate range (all predictions identical).
        span = np.where(upper - lower <= 0, 1.0, upper - lower)
        upper = lower + span
        if self.grid_size is None:
            grid_size = span / self.auto_grid_bins
        else:
            grid_size = np.broadcast_to(
                np.asarray(self.grid_size, dtype=np.float64), lower.shape
            ).copy()
            grid_size = np.minimum(grid_size, span)  # never fewer than one cell
        return LabelDensityMap.from_range(lower, upper, grid_size)

    def estimate(
        self,
        predictions: np.ndarray,
        uncertainties: np.ndarray,
        grid: LabelDensityMap | None = None,
    ) -> LabelDensityMap:
        """Estimate the label density map from confident predictions.

        Parameters
        ----------
        predictions:
            Confident predictions, shape ``(n_confident, n_dims)``.
        uncertainties:
            Scalar prediction uncertainty of each prediction, shape
            ``(n_confident,)``.
        grid:
            Optional pre-built grid (useful to compare against a ground-truth
            map on an identical grid); a fresh grid is built otherwise.

        Returns
        -------
        LabelDensityMap
            The normalized estimated label density map.
        """
        predictions = np.atleast_2d(np.asarray(predictions, dtype=np.float64))
        if predictions.shape[1] != self.n_dims:
            raise ValueError(
                f"expected predictions with {self.n_dims} dimensions, got {predictions.shape[1]}"
            )
        if len(predictions) == 0:
            raise ValueError("cannot estimate a label distribution from zero confident samples")
        sigmas = self.sigma_for(uncertainties)
        density_map = grid if grid is not None else self.build_grid(predictions, sigmas)
        density_map.add_instances(predictions, sigmas, self.error_model)
        return density_map.normalize()
