"""TASFAR: the end-to-end target-agnostic source-free adaptation pipeline.

The :class:`Tasfar` class wires together the substrates:

1. :meth:`Tasfar.calibrate_on_source` is run **once, before deployment**, on
   the labelled source dataset: it fits the uncertainty-to-error curve ``Q_s``
   and the confidence threshold ``tau``.  Only these few scalars travel with
   the source model; no source data is needed at the target (the source-free
   property).
2. :meth:`Tasfar.adapt` runs at the target with unlabeled target data: it
   splits the data by confidence, estimates the label density map from the
   confident part, pseudo-labels the uncertain part, and fine-tunes a copy of
   the source model with the credibility-weighted loss.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

import numpy as np

from ..engine.finetune import FineTuneEngine
from ..engine.rng import ADAPTATION_STREAM, CALIBRATION_STREAM, stream_seed_sequence
from ..engine.stacked import StackedFineTuneEngine
from ..nn.data import ArrayDataset
from ..nn.losses import Loss, MSELoss
from ..nn.models import RegressionModel
from ..nn.optim import Adam
from ..nn.stacked import PerReplicaLoss, StackedAdam, stack_modules, unstack_modules
from ..uncertainty.calibration import UncertaintyCalibrator, fit_sigma_curve
from ..uncertainty.mc_dropout import MCDropoutPredictor, UncertainPrediction
from .confidence import ConfidenceClassifier, ConfidenceSplit
from .config import TasfarConfig
from .density_map import LabelDensityMap
from .early_stopping import LossDropEarlyStopper
from .estimator import LabelDistributionEstimator
from .pseudo_label import PseudoLabelBatch, PseudoLabelGenerator

__all__ = ["NoConfidentSamplesError", "SourceCalibration", "AdaptationResult", "Tasfar"]


class NoConfidentSamplesError(ValueError):
    """Raised when adaptation is attempted on data with zero confident samples.

    A distinct type (not a bare ``ValueError``) so callers that want to
    retry later — e.g. the streaming service buffering through a sensor
    glitch — can catch exactly this condition without masking unrelated
    errors.
    """



@dataclass
class SourceCalibration:
    """Everything TASFAR keeps from the source domain.

    This is deliberately tiny (a threshold and a handful of line
    coefficients): it is the paper's answer to "what replaces the source
    dataset".
    """

    threshold: float
    calibrators: list[UncertaintyCalibrator]
    source_uncertainty_mean: float = 0.0
    source_error_mean: float = 0.0

    @property
    def label_dim(self) -> int:
        """Number of label dimensions covered by the calibration."""
        return len(self.calibrators)


@dataclass
class AdaptationResult:
    """Output of one TASFAR adaptation run, with diagnostics for analysis."""

    target_model: RegressionModel
    density_map: LabelDensityMap
    split: ConfidenceSplit
    pseudo_labels: PseudoLabelBatch
    target_prediction: UncertainPrediction
    losses: list[float] = field(default_factory=list)
    stopped_epoch: int | None = None

    @property
    def n_training_samples(self) -> int:
        """Number of samples used in the adaptation fine-tuning."""
        return len(self.pseudo_labels)


class Tasfar:
    """Target-agnostic source-free domain adaptation for regression tasks.

    Parameters
    ----------
    config:
        Hyper-parameters; defaults reproduce the paper's setting.
    loss:
        Task loss used for adaptation fine-tuning (Eq. 22 leaves it
        task-dependent); defaults to weighted MSE.
    """

    def __init__(self, config: TasfarConfig | None = None, loss: Loss | None = None) -> None:
        self.config = config if config is not None else TasfarConfig()
        self.loss = loss if loss is not None else MSELoss()

    # ------------------------------------------------------------------
    # Source-side calibration
    # ------------------------------------------------------------------
    def calibrate_on_source(
        self,
        source_model: RegressionModel,
        source_inputs: np.ndarray,
        source_labels: np.ndarray,
    ) -> SourceCalibration:
        """Fit ``Q_s`` and the confidence threshold ``tau`` on source data.

        Parameters
        ----------
        source_model:
            The trained source regression model.
        source_inputs, source_labels:
            The labelled source dataset (or a held-out part of it).
        """
        source_labels = np.asarray(source_labels, dtype=np.float64)
        if source_labels.ndim == 1:
            source_labels = source_labels[:, None]
        if source_labels.shape[0] != len(source_inputs):
            raise ValueError("source_inputs and source_labels must have the same length")

        predictor = MCDropoutPredictor(
            source_model,
            n_samples=self.config.n_mc_samples,
            seed=stream_seed_sequence(self.config.seed, CALIBRATION_STREAM),
        )
        prediction = predictor.predict(source_inputs)

        label_dim = source_labels.shape[1]
        errors = np.abs(prediction.mean - source_labels)
        # One sigma curve per label dimension, all driven by the scalar
        # prediction uncertainty u_t (the paper's single-uncertainty Q_s).
        calibrators = [
            fit_sigma_curve(
                prediction.uncertainty,
                errors[:, dim],
                n_segments=self.config.n_segments,
            )
            for dim in range(label_dim)
        ]

        classifier = ConfidenceClassifier(self.config.confidence_ratio)
        classifier.fit(prediction.uncertainty)
        return SourceCalibration(
            threshold=float(classifier.threshold),
            calibrators=calibrators,
            source_uncertainty_mean=float(prediction.uncertainty.mean()),
            source_error_mean=float(errors.mean()),
        )

    # ------------------------------------------------------------------
    # Target-side adaptation
    # ------------------------------------------------------------------
    def adapt(
        self,
        source_model: RegressionModel,
        target_inputs: np.ndarray,
        calibration: SourceCalibration,
        seed: int | None = None,
    ) -> AdaptationResult:
        """Adapt ``source_model`` to the target domain using unlabeled data.

        The source model itself is left untouched; the returned
        :class:`AdaptationResult` carries the fine-tuned copy.

        Parameters
        ----------
        seed:
            Seed for the stochastic parts of this adaptation (MC-dropout
            masks, mini-batch shuffling); defaults to ``config.seed``.  The
            result is a pure function of ``(model, inputs, calibration,
            seed)``, which is what lets the runtime service adapt many
            targets in parallel with order-independent results.
        """
        seed = self.config.seed if seed is None else int(seed)
        rng = np.random.default_rng(seed)

        predictor = MCDropoutPredictor(
            source_model,
            n_samples=self.config.n_mc_samples,
            seed=stream_seed_sequence(seed, ADAPTATION_STREAM),
        )
        prediction = predictor.predict(target_inputs)

        classifier = ConfidenceClassifier(self.config.confidence_ratio)
        classifier.threshold = calibration.threshold
        split = classifier.split(prediction.uncertainty)

        estimator = LabelDistributionEstimator(
            calibrators=calibration.calibrators,
            grid_size=self.config.grid_size,
            auto_grid_bins=self.config.auto_grid_bins,
            margin_sigmas=self.config.grid_margin_sigmas,
            error_model=self.config.error_model,
        )
        density_map, pseudo_batch = self._pseudo_label_uncertain(
            estimator, calibration, prediction, split
        )

        target_model = copy.deepcopy(source_model)
        losses, stopped_epoch = self._fine_tune(
            target_model, target_inputs, prediction, split, pseudo_batch, rng
        )
        return AdaptationResult(
            target_model=target_model,
            density_map=density_map,
            split=split,
            pseudo_labels=pseudo_batch,
            target_prediction=prediction,
            losses=losses,
            stopped_epoch=stopped_epoch,
        )

    def adapt_stacked(
        self,
        jobs: list[tuple[RegressionModel, np.ndarray, "int | None"]],
        calibration: SourceCalibration,
    ) -> list[tuple["AdaptationResult | None", "Exception | None"]]:
        """Adapt several targets at once through one stacked fine-tune.

        ``jobs`` is a list of ``(start_model, target_inputs, seed)`` triples
        — the same arguments :meth:`adapt` takes, K at a time.  Per job the
        serial pre-work (MC-dropout probing, confidence split, density
        estimation, pseudo-labelling) runs exactly as in :meth:`adapt`; the
        fine-tuning stage then stacks the jobs whose weighted datasets have
        equal length into one :class:`~repro.engine.StackedFineTuneEngine`
        run (singleton groups take the serial path verbatim).  Every job's
        result is **bit-identical** to its own :meth:`adapt` call.

        Returns one ``(result, error)`` pair per job, in input order: jobs
        that fail (e.g. :class:`NoConfidentSamplesError`) carry their
        exception instead of poisoning the whole stack.
        """
        prepared: list[dict | None] = [None] * len(jobs)
        errors: list[Exception | None] = [None] * len(jobs)
        for index, (source_model, target_inputs, seed) in enumerate(jobs):
            try:
                seed = self.config.seed if seed is None else int(seed)
                rng = np.random.default_rng(seed)
                predictor = MCDropoutPredictor(
                    source_model,
                    n_samples=self.config.n_mc_samples,
                    seed=stream_seed_sequence(seed, ADAPTATION_STREAM),
                )
                prediction = predictor.predict(target_inputs)
                classifier = ConfidenceClassifier(self.config.confidence_ratio)
                classifier.threshold = calibration.threshold
                split = classifier.split(prediction.uncertainty)
                estimator = LabelDistributionEstimator(
                    calibrators=calibration.calibrators,
                    grid_size=self.config.grid_size,
                    auto_grid_bins=self.config.auto_grid_bins,
                    margin_sigmas=self.config.grid_margin_sigmas,
                    error_model=self.config.error_model,
                )
                density_map, pseudo_batch = self._pseudo_label_uncertain(
                    estimator, calibration, prediction, split
                )
                prepared[index] = {
                    "rng": rng,
                    "prediction": prediction,
                    "split": split,
                    "density_map": density_map,
                    "pseudo_batch": pseudo_batch,
                    "target_model": copy.deepcopy(source_model),
                    "target_inputs": target_inputs,
                    "dataset": self.build_adaptation_dataset(
                        target_inputs, prediction, split, pseudo_batch
                    ),
                    "losses": [],
                    "stopped_epoch": None,
                }
            except Exception as exc:  # noqa: BLE001 - attributed per job
                errors[index] = exc

        # Group trainable jobs by dataset length: replicas in one stack must
        # share every gemm shape, and the engine deliberately refuses to pad
        # ragged batches (padding changes the bits — see engine/stacked.py).
        groups: dict[int, list[int]] = {}
        for index, job in enumerate(prepared):
            if job is None:
                continue
            dataset = job["dataset"]
            if len(dataset) == 0 or float(np.sum(dataset.weights)) <= 0:
                continue  # same early-out as _fine_tune: no training, empty losses
            groups.setdefault(len(dataset), []).append(index)

        for indices in groups.values():
            try:
                if len(indices) == 1:
                    job = prepared[indices[0]]
                    job["losses"], job["stopped_epoch"] = self._fine_tune(
                        job["target_model"],
                        job["target_inputs"],
                        job["prediction"],
                        job["split"],
                        job["pseudo_batch"],
                        job["rng"],
                    )
                else:
                    self._fine_tune_stack([prepared[index] for index in indices])
            except Exception as exc:  # noqa: BLE001 - attributed to the group
                for index in indices:
                    errors[index] = exc
                    prepared[index] = None

        results: list[tuple[AdaptationResult | None, Exception | None]] = []
        for job, error in zip(prepared, errors):
            if error is not None or job is None:
                results.append((None, error))
                continue
            results.append(
                (
                    AdaptationResult(
                        target_model=job["target_model"],
                        density_map=job["density_map"],
                        split=job["split"],
                        pseudo_labels=job["pseudo_batch"],
                        target_prediction=job["prediction"],
                        losses=job["losses"],
                        stopped_epoch=job["stopped_epoch"],
                    ),
                    None,
                )
            )
        return results

    def _fine_tune_stack(self, jobs: list[dict]) -> None:
        """Stacked counterpart of :meth:`_fine_tune` for one length group.

        Mirrors the serial method knob for knob: same stopper construction
        (one fresh stopper per replica), same engine parameters, same Adam
        hyper-parameters, and the same weighted batch step — just batched
        over the replica axis.
        """
        models = [job["target_model"] for job in jobs]
        stacked = stack_modules(models)
        stoppers = None
        if self.config.early_stop:
            stoppers = [
                LossDropEarlyStopper(
                    drop_fraction=self.config.early_stop_drop_fraction,
                    patience=self.config.early_stop_patience,
                    min_epochs=self.config.min_adaptation_epochs,
                )
                for _ in jobs
            ]
        engine = StackedFineTuneEngine(
            self.config.adaptation_epochs,
            self.config.adaptation_batch_size,
            disable_dropout=not self.config.dropout_during_adaptation,
            stoppers=stoppers,
        )
        optimizer = StackedAdam(
            stacked.parameters(), len(jobs), lr=self.config.adaptation_lr
        )
        loss = PerReplicaLoss(self.loss)

        def step(inputs: np.ndarray, labels: np.ndarray, weights: np.ndarray | None) -> np.ndarray:
            outputs = stacked.forward(inputs)
            values, grads = loss(outputs, labels, weights)
            stacked.backward(grads)
            return values

        outcomes = engine.run(
            stacked,
            [job["dataset"] for job in jobs],
            optimizer,
            step,
            rngs=[job["rng"] for job in jobs],
        )
        unstack_modules(stacked, models)
        for job, outcome in zip(jobs, outcomes):
            job["losses"] = outcome.losses
            job["stopped_epoch"] = outcome.stopped_epoch

    # ------------------------------------------------------------------
    # Pipeline pieces (also used directly by the experiments)
    # ------------------------------------------------------------------
    def _pseudo_label_uncertain(
        self,
        estimator: LabelDistributionEstimator,
        calibration: SourceCalibration,
        prediction: UncertainPrediction,
        split: ConfidenceSplit,
    ) -> tuple[LabelDensityMap, PseudoLabelBatch]:
        """Estimate the density map and pseudo-label the uncertain samples."""
        confident = split.confident_indices
        uncertain = split.uncertain_indices
        if len(confident) == 0:
            raise NoConfidentSamplesError(
                "no confident target samples: the source model is uncertain about "
                "every target input, so the label distribution cannot be estimated"
            )

        density_map = estimator.estimate(
            prediction.mean[confident], prediction.uncertainty[confident]
        )
        generator = PseudoLabelGenerator(
            estimator=estimator,
            threshold=calibration.threshold,
            locality_sigmas=self.config.locality_sigmas,
            mode=self.config.pseudo_label_mode,
        )
        if len(uncertain) == 0:
            empty = PseudoLabelBatch(
                pseudo_labels=np.empty((0, prediction.mean.shape[1])),
                credibilities=np.empty(0),
                predictions=np.empty((0, prediction.mean.shape[1])),
                sigmas=np.empty((0, prediction.mean.shape[1])),
            )
            return density_map, empty
        pseudo_batch = generator.pseudo_label(
            density_map,
            prediction.mean[uncertain],
            prediction.uncertainty[uncertain],
        )
        return density_map, pseudo_batch

    def build_adaptation_dataset(
        self,
        target_inputs: np.ndarray,
        prediction: UncertainPrediction,
        split: ConfidenceSplit,
        pseudo_batch: PseudoLabelBatch,
    ) -> ArrayDataset:
        """Assemble the weighted fine-tuning dataset (Eq. 22).

        Uncertain samples carry their pseudo-labels weighted by credibility;
        confident samples (optionally) carry their own predictions with unit
        weight, which combats catastrophic forgetting.
        """
        target_inputs = np.asarray(target_inputs, dtype=np.float64)
        uncertain = split.uncertain_indices
        confident = split.confident_indices

        inputs_list = [target_inputs[uncertain]]
        labels_list = [pseudo_batch.pseudo_labels]
        if self.config.use_credibility:
            credibilities = pseudo_batch.credibilities.copy()
            if self.config.normalize_credibility and credibilities.size and credibilities.mean() > 0:
                credibilities = credibilities / credibilities.mean()
            weights_list = [credibilities]
        else:
            weights_list = [np.ones(len(uncertain))]

        if self.config.include_confident_data and len(confident) > 0:
            inputs_list.append(target_inputs[confident])
            labels_list.append(prediction.mean[confident])
            weights_list.append(np.ones(len(confident)))

        inputs = np.concatenate(inputs_list, axis=0)
        labels = np.concatenate(labels_list, axis=0)
        weights = np.concatenate(weights_list, axis=0)
        return ArrayDataset(inputs, labels, weights)

    def _fine_tune(
        self,
        target_model: RegressionModel,
        target_inputs: np.ndarray,
        prediction: UncertainPrediction,
        split: ConfidenceSplit,
        pseudo_batch: PseudoLabelBatch,
        rng: np.random.Generator,
    ) -> tuple[list[float], int | None]:
        """Weighted supervised fine-tuning with loss-drop early stopping.

        The epoch/batch loop itself lives in the shared
        :class:`~repro.engine.FineTuneEngine`; only the weighted-loss batch
        step (Eq. 22) is TASFAR's own.
        """
        dataset = self.build_adaptation_dataset(target_inputs, prediction, split, pseudo_batch)
        if len(dataset) == 0 or float(np.sum(dataset.weights)) <= 0:
            return [], None

        stopper = None
        if self.config.early_stop:
            stopper = LossDropEarlyStopper(
                drop_fraction=self.config.early_stop_drop_fraction,
                patience=self.config.early_stop_patience,
                min_epochs=self.config.min_adaptation_epochs,
            )
        engine = FineTuneEngine(
            self.config.adaptation_epochs,
            self.config.adaptation_batch_size,
            disable_dropout=not self.config.dropout_during_adaptation,
            stopper=stopper,
        )
        optimizer = Adam(target_model.parameters(), lr=self.config.adaptation_lr)

        def step(inputs: np.ndarray, labels: np.ndarray, weights: np.ndarray | None) -> float:
            outputs = target_model.forward(inputs)
            value, grad = self.loss(outputs, labels, weights)
            target_model.backward(grad)
            return value

        outcome = engine.run(target_model, dataset, optimizer, step, rng=rng)
        return outcome.losses, outcome.stopped_epoch
