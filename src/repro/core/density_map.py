"""Label density map: the grid representation of the target label distribution.

The map is an N-dimensional histogram over label space (1-D for counts,
prices, durations; 2-D for the PDR displacement vector).  Instead of counting
hard labels — which are unavailable — the label distribution estimator
accumulates the probability mass of per-sample instance-label distributions
(Eq. 10–12).  Label dimensions are treated as independent, as the paper
suggests for multi-dimensional labels, so a cell's mass is the product of
per-axis interval probabilities.
"""

from __future__ import annotations

import numpy as np

from ..uncertainty.error_models import ErrorModel, GaussianErrorModel

__all__ = ["LabelDensityMap"]


class LabelDensityMap:
    """Grid of label densities over an axis-aligned region of label space.

    Parameters
    ----------
    edges:
        One array of bin edges per label dimension.  Each array must be
        strictly increasing with at least two entries.
    """

    def __init__(self, edges: list[np.ndarray]) -> None:
        if not edges:
            raise ValueError("at least one dimension of edges is required")
        self.edges = [np.asarray(edge, dtype=np.float64) for edge in edges]
        for axis, edge in enumerate(self.edges):
            if edge.ndim != 1 or len(edge) < 2:
                raise ValueError(f"edges for axis {axis} must be 1-D with at least 2 entries")
            if np.any(np.diff(edge) <= 0):
                raise ValueError(f"edges for axis {axis} must be strictly increasing")
        self.shape = tuple(len(edge) - 1 for edge in self.edges)
        self.densities = np.zeros(self.shape, dtype=np.float64)
        self._accumulated = 0

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_range(
        cls,
        lower: np.ndarray,
        upper: np.ndarray,
        grid_size: np.ndarray,
    ) -> "LabelDensityMap":
        """Build a map covering ``[lower, upper]`` with cells of ``grid_size``.

        All three arguments are broadcast per label dimension.  The upper edge
        is extended so the final cell is complete.
        """
        lower = np.atleast_1d(np.asarray(lower, dtype=np.float64))
        upper = np.atleast_1d(np.asarray(upper, dtype=np.float64))
        grid_size = np.broadcast_to(np.asarray(grid_size, dtype=np.float64), lower.shape)
        if lower.shape != upper.shape:
            raise ValueError("lower and upper must have the same shape")
        if np.any(upper <= lower):
            raise ValueError("upper must exceed lower in every dimension")
        if np.any(grid_size <= 0):
            raise ValueError("grid_size must be positive")
        edges = []
        for low, high, size in zip(lower, upper, grid_size):
            n_cells = max(1, int(np.ceil((high - low) / size)))
            edges.append(low + size * np.arange(n_cells + 1))
        return cls(edges)

    @classmethod
    def from_labels(cls, labels: np.ndarray, edges: list[np.ndarray]) -> "LabelDensityMap":
        """Ground-truth density map: a normalized histogram of true labels.

        Used to evaluate the label distribution estimator (Fig. 6 and 7).
        """
        labels = np.atleast_2d(np.asarray(labels, dtype=np.float64))
        density_map = cls(edges)
        histogram, _ = np.histogramdd(labels, bins=density_map.edges)
        density_map.densities = histogram
        density_map._accumulated = len(labels)
        density_map.normalize()
        return density_map

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def n_dims(self) -> int:
        """Number of label dimensions."""
        return len(self.edges)

    @property
    def cell_centers(self) -> list[np.ndarray]:
        """Centre coordinate of every cell along each axis."""
        return [(edge[:-1] + edge[1:]) / 2.0 for edge in self.edges]

    @property
    def cell_sizes(self) -> list[np.ndarray]:
        """Width of every cell along each axis."""
        return [np.diff(edge) for edge in self.edges]

    @property
    def global_mean_density(self) -> float:
        """Mean density over all cells (the ``d_bar_i`` of Eq. 19)."""
        return float(self.densities.mean())

    @property
    def total_mass(self) -> float:
        """Sum of all cell densities."""
        return float(self.densities.sum())

    # ------------------------------------------------------------------
    # Accumulation
    # ------------------------------------------------------------------
    def add_instance(
        self,
        center: np.ndarray,
        sigma: np.ndarray,
        error_model: ErrorModel | None = None,
    ) -> None:
        """Accumulate one instance-label distribution into the map (Eq. 10).

        Parameters
        ----------
        center:
            Predicted label, one value per dimension.
        sigma:
            Standard deviation of the instance-label distribution per
            dimension (``Q_s(u)``).
        error_model:
            Distribution family; defaults to Gaussian.
        """
        center = np.atleast_1d(np.asarray(center, dtype=np.float64))
        if center.shape != (self.n_dims,):
            raise ValueError(f"center must have {self.n_dims} dimensions, got {center.shape}")
        sigma = np.broadcast_to(np.asarray(sigma, dtype=np.float64), center.shape)
        self.add_instances(center[None, :], sigma[None, :], error_model)

    def add_instances(
        self,
        centers: np.ndarray,
        sigmas: np.ndarray,
        error_model: ErrorModel | None = None,
    ) -> None:
        """Accumulate a batch of instance-label distributions (vectorized).

        All per-axis interval masses are evaluated in one broadcasted call
        per axis (``ErrorModel.batch_interval_probability``) and the
        per-instance outer products are reduced with a single ``sum`` over
        the instance axis, instead of a Python loop over samples.  The
        instance-axis reduction adds rows in index order, so the result is
        bit-identical to accumulating the instances one by one into a fresh
        map.
        """
        error_model = error_model if error_model is not None else GaussianErrorModel()
        centers = np.atleast_2d(np.asarray(centers, dtype=np.float64))
        if centers.shape[1] != self.n_dims:
            raise ValueError(
                f"centers must have {self.n_dims} dimensions, got {centers.shape[1]}"
            )
        sigmas = np.broadcast_to(np.asarray(sigmas, dtype=np.float64), centers.shape)
        n_instances = len(centers)
        if n_instances == 0:
            return
        axis_masses = []
        for axis in range(self.n_dims):
            edge = self.edges[axis]
            mass = error_model.batch_interval_probability(
                centers[:, axis], sigmas[:, axis], edge[:-1], edge[1:]
            )
            axis_masses.append(np.clip(mass, 0.0, None))
        # Per-instance outer products via broadcasting: (n, c1, 1, ...) *
        # (n, 1, c2, ...) -> (n, c1, c2, ...), then reduce the instance axis.
        product = axis_masses[0]
        for mass in axis_masses[1:]:
            product = product[..., None] * mass.reshape(
                n_instances, *([1] * (product.ndim - 1)), mass.shape[1]
            )
        self.densities += product.sum(axis=0)
        self._accumulated += n_instances

    def normalize(self) -> "LabelDensityMap":
        """Normalize the map so the densities sum to one."""
        total = self.densities.sum()
        if total > 0:
            self.densities = self.densities / total
        return self

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def locality_mask(self, center: np.ndarray, radius: np.ndarray) -> np.ndarray:
        """Boolean mask of cells whose centres lie within ``radius`` of ``center``.

        The locality is a per-axis box (|centre - prediction| < radius per
        dimension), matching the paper's 3-sigma neighbourhood (Eq. 20).
        """
        center = np.atleast_1d(np.asarray(center, dtype=np.float64))
        radius = np.broadcast_to(np.asarray(radius, dtype=np.float64), center.shape)
        axis_masks = [
            np.abs(self.cell_centers[axis] - center[axis]) < radius[axis]
            for axis in range(self.n_dims)
        ]
        return _outer_product([mask.astype(np.float64) for mask in axis_masks]) > 0

    def local_mean_density(self, center: np.ndarray, radius: np.ndarray) -> float:
        """Mean density of the cells in the locality of ``center`` (``d_bar_l``)."""
        mask = self.locality_mask(center, radius)
        if not mask.any():
            return 0.0
        return float(self.densities[mask].mean())

    def cell_volumes(self) -> np.ndarray:
        """Volume (length/area/...) of every cell, shaped like ``densities``."""
        volumes = self.cell_sizes[0]
        for sizes in self.cell_sizes[1:]:
            volumes = np.multiply.outer(volumes, sizes)
        return volumes

    def density_per_unit(self) -> np.ndarray:
        """Cell mass divided by cell volume (a proper probability density)."""
        return self.densities / self.cell_volumes()

    def mean_absolute_error(self, other: "LabelDensityMap", per_unit: bool = False) -> float:
        """MAE between two maps defined on the same grid (Fig. 7).

        With ``per_unit=True`` the comparison uses per-unit-volume densities,
        which makes the error comparable across different grid sizes.
        """
        if self.shape != other.shape:
            raise ValueError(f"maps have different shapes: {self.shape} vs {other.shape}")
        if per_unit:
            return float(np.abs(self.density_per_unit() - other.density_per_unit()).mean())
        return float(np.abs(self.densities - other.densities).mean())

    def marginal(self, axis: int) -> np.ndarray:
        """Marginal density along one axis (sums over the other axes)."""
        if not 0 <= axis < self.n_dims:
            raise ValueError(f"axis {axis} out of range for {self.n_dims}-D map")
        other_axes = tuple(i for i in range(self.n_dims) if i != axis)
        return self.densities.sum(axis=other_axes)

    def copy(self) -> "LabelDensityMap":
        """Deep copy of the map."""
        clone = LabelDensityMap([edge.copy() for edge in self.edges])
        clone.densities = self.densities.copy()
        clone._accumulated = self._accumulated
        return clone


def _outer_product(vectors: list[np.ndarray]) -> np.ndarray:
    """Outer product of 1-D vectors producing an N-D array."""
    result = vectors[0]
    for vector in vectors[1:]:
        result = np.multiply.outer(result, vector)
    return result
