"""Pseudo-label generator (Algorithm 3 of the paper).

For every uncertain sample the generator combines two sources of information:

* the *prior* — the label density map estimated from confident data, which
  captures the scenario's label distribution; and
* the *likelihood* — the instance-label distribution centred on the source
  model's prediction with spread ``Q_s(u)``.

The posterior over grid cells is their product (Eq. 14), restricted to a
3-sigma locality around the prediction (Eq. 20).  The pseudo-label is the
density-weighted interpolation of cell centres (Eq. 15), and its credibility
``beta_t`` scales with how uncertain the prediction is and how dense the local
neighbourhood of the map is (Eq. 18–21).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..uncertainty.error_models import ErrorModel, get_error_model
from .density_map import LabelDensityMap
from .estimator import LabelDistributionEstimator

__all__ = ["PseudoLabelBatch", "PseudoLabelGenerator"]


@dataclass
class PseudoLabelBatch:
    """Pseudo-labels and credibility weights for a batch of uncertain samples."""

    pseudo_labels: np.ndarray
    credibilities: np.ndarray
    predictions: np.ndarray
    sigmas: np.ndarray

    def __len__(self) -> int:
        return len(self.pseudo_labels)


class PseudoLabelGenerator:
    """Generate pseudo-labels for uncertain data from a label density map.

    Parameters
    ----------
    estimator:
        The fitted label-distribution estimator; re-used for its calibrators
        (``Q_s``) and error model so likelihoods match the map construction.
    threshold:
        The confidence threshold ``tau`` (used to normalize credibility).
    locality_sigmas:
        Size of the posterior support in sigmas (paper: 3).
    mode:
        ``"interpolate"`` (Eq. 15) or ``"argmax"`` (highest posterior cell).
    """

    def __init__(
        self,
        estimator: LabelDistributionEstimator,
        threshold: float,
        locality_sigmas: float = 3.0,
        mode: str = "interpolate",
        error_model: str | ErrorModel | None = None,
    ) -> None:
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if locality_sigmas <= 0:
            raise ValueError("locality_sigmas must be positive")
        if mode not in ("interpolate", "argmax"):
            raise ValueError("mode must be 'interpolate' or 'argmax'")
        self.estimator = estimator
        self.threshold = float(threshold)
        self.locality_sigmas = float(locality_sigmas)
        self.mode = mode
        if error_model is None:
            self.error_model = estimator.error_model
        else:
            self.error_model = (
                error_model if isinstance(error_model, ErrorModel) else get_error_model(error_model)
            )

    # ------------------------------------------------------------------
    # Single-sample pseudo-labelling
    # ------------------------------------------------------------------
    def pseudo_label_one(
        self,
        density_map: LabelDensityMap,
        prediction: np.ndarray,
        sigma: np.ndarray,
        uncertainty: float,
    ) -> tuple[np.ndarray, float]:
        """Pseudo-label a single uncertain sample.

        Returns
        -------
        tuple
            ``(pseudo_label, credibility)``.  When the locality holds no
            density mass the pseudo-label falls back to the model prediction
            with zero credibility, which keeps such samples from harming the
            adaptation (the failure-case behaviour discussed in Section IV-B5).
        """
        prediction = np.atleast_1d(np.asarray(prediction, dtype=np.float64))
        sigma = np.broadcast_to(np.asarray(sigma, dtype=np.float64), prediction.shape)
        radius = self.locality_sigmas * sigma

        mask = density_map.locality_mask(prediction, radius)
        if not mask.any():
            return prediction.copy(), 0.0

        likelihood = self._likelihood(density_map, prediction, sigma)
        posterior = density_map.densities * likelihood
        posterior = np.where(mask, posterior, 0.0)
        posterior_mass = posterior.sum()

        if posterior_mass <= 0:
            pseudo = prediction.copy()
        elif self.mode == "argmax":
            flat_index = int(np.argmax(posterior))
            cell_index = np.unravel_index(flat_index, density_map.shape)
            pseudo = np.array(
                [density_map.cell_centers[axis][cell_index[axis]] for axis in range(density_map.n_dims)]
            )
        else:
            pseudo = self._interpolate(density_map, posterior / posterior_mass)

        credibility = self._credibility(density_map, prediction, radius, uncertainty)
        return pseudo, credibility

    # ------------------------------------------------------------------
    # Batch pseudo-labelling
    # ------------------------------------------------------------------
    def pseudo_label(
        self,
        density_map: LabelDensityMap,
        predictions: np.ndarray,
        uncertainties: np.ndarray,
    ) -> PseudoLabelBatch:
        """Pseudo-label a batch of uncertain samples.

        Parameters
        ----------
        density_map:
            The estimated label density map (prior).
        predictions:
            Source-model mean predictions, shape ``(n, n_dims)``.
        uncertainties:
            Scalar prediction uncertainty ``u_t`` per sample; it feeds ``Q_s``
            and the credibility normalization against ``tau``.
        """
        predictions = np.atleast_2d(np.asarray(predictions, dtype=np.float64))
        uncertainties = np.asarray(uncertainties, dtype=np.float64).ravel()
        if len(predictions) != len(uncertainties):
            raise ValueError("predictions and uncertainties must have the same length")
        sigmas = self.estimator.sigma_for(uncertainties)

        pseudo_labels = np.empty_like(predictions)
        credibilities = np.empty(len(predictions))
        for index in range(len(predictions)):
            pseudo, credibility = self.pseudo_label_one(
                density_map, predictions[index], sigmas[index], float(uncertainties[index])
            )
            pseudo_labels[index] = pseudo
            credibilities[index] = credibility
        return PseudoLabelBatch(
            pseudo_labels=pseudo_labels,
            credibilities=credibilities,
            predictions=predictions,
            sigmas=sigmas,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _likelihood(
        self, density_map: LabelDensityMap, prediction: np.ndarray, sigma: np.ndarray
    ) -> np.ndarray:
        """Per-cell probability mass of the instance-label distribution."""
        axis_masses = []
        for axis in range(density_map.n_dims):
            edge = density_map.edges[axis]
            mass = self.error_model.interval_probability(
                float(prediction[axis]), float(sigma[axis]), edge[:-1], edge[1:]
            )
            axis_masses.append(np.clip(mass, 0.0, None))
        result = axis_masses[0]
        for mass in axis_masses[1:]:
            result = np.multiply.outer(result, mass)
        return result

    def _interpolate(self, density_map: LabelDensityMap, posterior: np.ndarray) -> np.ndarray:
        """Posterior-weighted mean of cell centres (Eq. 15)."""
        pseudo = np.empty(density_map.n_dims)
        for axis in range(density_map.n_dims):
            axis_weights = posterior.sum(
                axis=tuple(i for i in range(density_map.n_dims) if i != axis)
            )
            pseudo[axis] = float(np.dot(axis_weights, density_map.cell_centers[axis]))
        return pseudo

    def _credibility(
        self,
        density_map: LabelDensityMap,
        prediction: np.ndarray,
        radius: np.ndarray,
        uncertainty: float,
    ) -> float:
        """Credibility ``beta_t = (d_local / d_global) * (u_t / tau)`` (Eq. 18–21).

        Higher uncertainty means the prior should be trusted more relative to
        the model prediction, and a locally dense map means the prior is
        informative — both push the credibility up.
        """
        global_density = density_map.global_mean_density
        if global_density <= 0:
            return 0.0
        local_density = density_map.local_mean_density(prediction, radius)
        density_term = local_density / global_density
        confidence_term = uncertainty / self.threshold
        return float(density_term * confidence_term)
