"""Configuration for the TASFAR adaptation pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TasfarConfig"]


@dataclass
class TasfarConfig:
    """Hyper-parameters of TASFAR.

    Defaults follow the paper's experimental setting (Section IV-A and the
    parameter study IV-B1): 20 MC-dropout samples, confidence ratio
    ``eta = 0.9``, ``q = 40`` uncertainty segments for the ``Q_s`` fit, a
    Gaussian instance-label error model, and a 3-sigma locality for the
    pseudo-label posterior.

    Attributes
    ----------
    confidence_ratio:
        ``eta``: fraction of *source* samples that must count as confident;
        the uncertainty threshold ``tau`` is the ``eta``-quantile of source
        uncertainties (Section III-B, Fig. 10).
    n_mc_samples:
        Number of Monte-Carlo dropout forward passes used to estimate
        prediction uncertainty.
    n_segments:
        ``q``: number of uncertainty segments used when fitting ``Q_s``
        (Eq. 7, Fig. 9).
    grid_size:
        Grid size ``g`` of the label density map, in label units.  A scalar is
        broadcast to every label dimension.  ``None`` selects a per-dimension
        size automatically from the spread of confident predictions
        (``auto_grid_bins`` cells across the observed range).
    auto_grid_bins:
        Number of grid cells per dimension used when ``grid_size`` is None.
    grid_margin_sigmas:
        The density-map range is the range of confident predictions extended
        by this many (maximum) sigmas on both sides.
    error_model:
        Instance-label distribution family: ``"gaussian"`` (paper default),
        ``"laplace"`` or ``"uniform"`` (Fig. 8).
    locality_sigmas:
        Pseudo-label posterior support: cells whose centres lie within this
        many sigmas of the prediction (Eq. 20 uses 3).
    use_credibility:
        Weigh pseudo-labelled samples by the credibility ``beta_t`` (Eq. 21).
        Disabling it reproduces the ablation of Fig. 12.
    normalize_credibility:
        Rescale the credibility weights of the uncertain samples to have mean
        one.  The paper leaves the absolute scale of ``beta_t`` unspecified;
        normalizing keeps the relative ordering (what Fig. 11 validates) while
        preventing the pseudo-labelled samples from drowning out the confident
        anchor samples on the small datasets used here.
    dropout_during_adaptation:
        Keep dropout active while fine-tuning on pseudo-labels.  Disabled by
        default: with the compact models of this reproduction, dropout during
        self-training acts as strong self-distillation noise and measurably
        hurts; MC dropout at inference time is unaffected by this switch.
    include_confident_data:
        Also train on confident data with their own predictions as
        pseudo-labels (Section III-D recommends this to avoid forgetting).
    pseudo_label_mode:
        ``"interpolate"`` (Eq. 15, default) or ``"argmax"`` (highest-density
        cell) — exposed for ablation.
    adaptation_epochs:
        Maximum number of fine-tuning epochs.
    adaptation_lr:
        Learning rate of the adaptation optimizer (Adam).
    adaptation_batch_size:
        Mini-batch size for adaptation training.
    early_stop:
        Stop adaptation when the loss-drop rate collapses (Fig. 13).
    early_stop_patience:
        Number of consecutive slow epochs required before stopping.
    early_stop_drop_fraction:
        A drop rate below this fraction of the initial drop rate counts as
        "slow".
    min_adaptation_epochs:
        Never stop before this many epochs.
    seed:
        Seed for all stochastic parts of the adaptation (MC dropout order,
        mini-batch shuffling).
    """

    confidence_ratio: float = 0.9
    n_mc_samples: int = 20
    n_segments: int = 40
    grid_size: float | tuple[float, ...] | None = None
    auto_grid_bins: int = 25
    grid_margin_sigmas: float = 3.0
    error_model: str = "gaussian"
    locality_sigmas: float = 3.0
    use_credibility: bool = True
    normalize_credibility: bool = True
    include_confident_data: bool = True
    dropout_during_adaptation: bool = False
    pseudo_label_mode: str = "interpolate"
    adaptation_epochs: int = 40
    adaptation_lr: float = 1e-3
    adaptation_batch_size: int = 32
    early_stop: bool = True
    early_stop_patience: int = 3
    early_stop_drop_fraction: float = 0.1
    min_adaptation_epochs: int = 5
    seed: int = 0
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 < self.confidence_ratio < 1.0:
            raise ValueError("confidence_ratio must be in (0, 1)")
        if self.n_mc_samples < 2:
            raise ValueError("n_mc_samples must be at least 2")
        if self.n_segments <= 0:
            raise ValueError("n_segments must be positive")
        if self.auto_grid_bins < 2:
            raise ValueError("auto_grid_bins must be at least 2")
        if self.locality_sigmas <= 0:
            raise ValueError("locality_sigmas must be positive")
        if self.pseudo_label_mode not in ("interpolate", "argmax"):
            raise ValueError("pseudo_label_mode must be 'interpolate' or 'argmax'")
        if self.adaptation_epochs <= 0:
            raise ValueError("adaptation_epochs must be positive")
        if self.min_adaptation_epochs < 1:
            raise ValueError("min_adaptation_epochs must be at least 1")
