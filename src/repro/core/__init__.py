"""TASFAR core: confidence split, label density estimation, pseudo-labelling, adaptation."""

from .adapter import AdaptationResult, NoConfidentSamplesError, SourceCalibration, Tasfar
from .confidence import ConfidenceClassifier, ConfidenceSplit
from .config import TasfarConfig
from .density_map import LabelDensityMap
from .early_stopping import LossDropEarlyStopper
from .estimator import LabelDistributionEstimator
from .pseudo_label import PseudoLabelBatch, PseudoLabelGenerator

__all__ = [
    "AdaptationResult",
    "ConfidenceClassifier",
    "ConfidenceSplit",
    "LabelDensityMap",
    "LabelDistributionEstimator",
    "LossDropEarlyStopper",
    "NoConfidentSamplesError",
    "PseudoLabelBatch",
    "PseudoLabelGenerator",
    "SourceCalibration",
    "Tasfar",
    "TasfarConfig",
]
