"""Setuptools shim.

The canonical build configuration lives in ``pyproject.toml``.  This file only
exists so that editable installs work in offline environments whose setuptools
cannot build PEP 517 editable wheels (no ``wheel`` package available):

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
