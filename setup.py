"""Setuptools build configuration.

Kept as a plain ``setup.py`` (there is no ``pyproject.toml``) so editable
installs work in offline environments whose setuptools cannot build PEP 517
editable wheels (no ``wheel`` package available):

    pip install -e . --no-build-isolation --no-use-pep517

Installing also provides the ``repro`` console script, equivalent to
``python -m repro.cli``.
"""

from pathlib import Path

from setuptools import find_packages, setup

_version = {}
exec((Path(__file__).parent / "src" / "repro" / "version.py").read_text(), _version)

setup(
    name="tasfar-repro",
    version=_version["__version__"],
    description=(
        "Reproduction of TASFAR (ICDE 2024): target-agnostic source-free "
        "domain adaptation for regression, with a multi-target runtime, a "
        "streaming adaptation subsystem, and a sharded serving gateway "
        "(typed request/envelope API, micro-batched prediction, JSON-lines "
        "front door)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
