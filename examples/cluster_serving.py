"""Networked serving and cluster mode: sockets, routing, growth.

This walkthrough drives the transport story end to end, in one process
(threaded servers, real TCP on loopback) so it runs anywhere:

1. stand two gateways up behind :class:`repro.net.NetServer` — each is
   exactly what ``repro serve --listen`` runs, speaking the unchanged
   ``repro.serve/v1`` JSON-lines codec over TCP;
2. describe them as a ``repro.cluster/v1`` map and route a whole fleet
   through :class:`repro.net.ClusterClient` — per-target rendezvous
   placement, per-node burst batching, answers back in request order;
3. grow the cluster by one node and verify the placement invariant:
   targets move *only to the new node*, never between survivors;
4. overload a deliberately tiny queue and read the typed ``overloaded``
   envelope a shed request is answered with — explicit backpressure,
   never a hang;
5. merge every node's metrics snapshot, each entry labeled with its node.

Run it with::

    python examples/cluster_serving.py

The multi-process version of step 1+2 is two commands::

    python -m repro.cli cluster --spec cluster.json     # spawns the nodes
    python -m repro.cli serve --connect 127.0.0.1:7601  # talk to one node
"""

from __future__ import annotations

import json

import numpy as np

from repro.net import (
    ClusterClient,
    ClusterMap,
    ClusterRouter,
    NetClient,
    NetServer,
    NodeSpec,
    node_command,
)
from repro.serve import AdaptRequest, Gateway, PredictRequest, ReportRequest

TASK, SCALE, SEED = "housing", "tiny", 0


def build_node(name: str) -> NetServer:
    gateway = Gateway.from_task(
        TASK, scale=SCALE, seed=SEED, scheme="tasfar", n_shards=2, shard_workers=2
    )
    server = NetServer(gateway, node=name, max_pending=64)
    server.start()
    return server


def main() -> None:
    print("standing two gateway nodes up behind TCP servers ...")
    servers = {name: build_node(name) for name in ("alpha", "beta")}
    nodes = tuple(
        NodeSpec(name=name, host=server.address[0], port=server.address[1])
        for name, server in servers.items()
    )
    cluster_map = ClusterMap(nodes=nodes)
    for node in nodes:
        print(f"  node {node.name}: listening on {node.host}:{node.port}")

    rng = np.random.default_rng(SEED)
    fleet = [f"segment-{index:02d}" for index in range(8)]

    with ClusterClient(cluster_map) as client:
        placement = client.router.placement(fleet)
        print("\nrendezvous placement (computed, no table):")
        for target in fleet:
            print(f"  {target} -> {placement[target]}")

        print("\nadapting the fleet through the cluster ...")
        envelopes = client.submit_many(
            [AdaptRequest(target, rng.normal(size=(40, 8))) for target in fleet]
        )
        assert all(envelope.ok for envelope in envelopes)

        print("firing a bursty predict load (per-node sub-bursts coalesce) ...")
        burst = [
            PredictRequest(fleet[i % len(fleet)], rng.normal(size=(4, 8)))
            for i in range(32)
        ]
        answers = client.submit_many(burst)
        ok = sum(envelope.ok for envelope in answers)
        print(f"  {ok}/{len(answers)} predictions answered, in request order")

        report = client.submit(ReportRequest(fleet[0]))
        print(f"  report[{fleet[0]}]: ok={report.ok}")

    print("\ngrowing the cluster: alpha, beta -> alpha, beta, gamma")
    before = ClusterRouter(["alpha", "beta"])
    after = ClusterRouter(["alpha", "beta", "gamma"])
    moved = {t: after.node_for(t) for t in fleet if after.node_for(t) != before.node_for(t)}
    for target, node in moved.items():
        assert node == "gamma"  # the growth invariant: only TO the new node
    print(f"  {len(moved)}/{len(fleet)} targets moved — every one to 'gamma', "
          "none between survivors")

    print("\noverloading a tiny queue to see explicit backpressure ...")
    tiny = NetServer(servers["alpha"].gateway, max_pending=1)
    host, port = tiny.start()
    try:
        lines = ["", *(
            json.dumps({"kind": "report", "target_id": f"flood-{i}"}) for i in range(4)
        ), ""]
        client = NetClient(host, port)
        raw = client._exchange(lines, 4, idempotent=True)
        shed = [json.loads(line) for line in raw if not json.loads(line)["ok"]]
        client.close()
        print(f"  {len(shed)} of 4 shed; a shed answer looks like:")
        print(f"  {json.dumps(shed[0]['error'])}")
    finally:
        tiny.stop()

    print("\nmerged fleet metrics (every entry labeled with its node):")
    with ClusterClient(cluster_map) as client:
        snapshot = client.metrics_snapshot()
    accepted = [c for c in snapshot["counters"] if c["name"] == "net.accepted"]
    for counter in accepted:
        print(f"  net.accepted{counter['labels']} = {counter['value']}")

    print("\nthe same cluster as real processes would launch as:")
    spec = {
        "schema": "repro.cluster/v1",
        "serve_args": ["--task", TASK, "--scale", SCALE, "--shards", "2"],
        "nodes": [
            {"name": node.name, "host": node.host, "port": node.port} for node in nodes
        ],
    }
    print(json.dumps(spec, indent=2))
    for node in nodes:
        print("  $", " ".join(node_command(cluster_map, node, python="python")[0:]))

    for server in servers.values():
        server.stop()
        server.gateway.close()
    print("\ndone: all nodes drained and stopped.")


if __name__ == "__main__":
    main()
