"""Quickstart: adapt a regression model to a new domain without source data.

This example builds the smallest possible end-to-end TASFAR run:

1. train a small MLP on a synthetic *source* regression task;
2. calibrate TASFAR on the source data (this is the only source-side step —
   only a threshold and two line coefficients travel with the model);
3. adapt the model to a *target* domain with unlabeled data only;
4. compare the error of the source model and the adapted model.

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.core import Tasfar, TasfarConfig
from repro.metrics import mae, mse


def make_source_data(rng: np.random.Generator, n: int = 600):
    """A noisy 4-feature linear task: the source domain."""
    inputs = rng.normal(size=(n, 4))
    weights = np.array([1.5, -2.0, 0.8, 0.3])
    labels = inputs @ weights + 0.1 * rng.normal(size=n)
    return inputs, labels


def make_target_data(rng: np.random.Generator, n: int = 300):
    """The target domain: narrower label band plus corrupted (hard) inputs.

    One third of the target inputs are garbled — the source model will be
    both wrong and uncertain on them, while their labels still follow the
    target scenario's label distribution.  That is the structure TASFAR
    exploits.
    """
    inputs = rng.normal(size=(n, 4)) * 0.4 + 0.6
    weights = np.array([1.5, -2.0, 0.8, 0.3])
    labels = inputs @ weights + 0.1 * rng.normal(size=n)
    hard = rng.random(n) < 0.3
    inputs[hard] = rng.normal(scale=4.0, size=(hard.sum(), 4))
    return inputs, labels


def main() -> None:
    rng = np.random.default_rng(0)
    source_inputs, source_labels = make_source_data(rng)
    target_inputs, target_labels = make_target_data(rng)

    # 1. Train the source model (a small MLP with dropout).
    model = nn.build_mlp(input_dim=4, output_dim=1, hidden_dims=(32, 16), dropout=0.2, seed=0)
    trainer = nn.Trainer(model, lr=3e-3)
    history = trainer.fit(
        nn.ArrayDataset(source_inputs, source_labels), epochs=40, batch_size=32, rng=rng
    )
    print(f"source training loss: {history.losses[0]:.3f} -> {history.losses[-1]:.3f}")

    # 2. Calibrate TASFAR on the source data (before deployment).
    tasfar = Tasfar(TasfarConfig(seed=0))
    calibration = tasfar.calibrate_on_source(model, source_inputs, source_labels)
    print(f"confidence threshold tau = {calibration.threshold:.4f}")
    print(f"sigma curve Q_s(u) = {calibration.calibrators[0].intercept:.3f} "
          f"+ {calibration.calibrators[0].slope:.3f} * u")

    # 3. Adapt to the target domain using ONLY unlabeled target inputs.
    result = tasfar.adapt(model, target_inputs, calibration)
    print(f"target data: {result.split.n_confident} confident / "
          f"{result.split.n_uncertain} uncertain samples")
    print(f"adaptation stopped after {len(result.losses)} epochs")

    # 4. Evaluate (labels are used here only to report the improvement).
    adapted = nn.Trainer(result.target_model)
    labels_2d = target_labels[:, None]
    before_mse = mse(trainer.predict(target_inputs), labels_2d)
    after_mse = mse(adapted.predict(target_inputs), labels_2d)
    before_mae = mae(trainer.predict(target_inputs), labels_2d)
    after_mae = mae(adapted.predict(target_inputs), labels_2d)
    print(f"target MSE: {before_mse:.3f} -> {after_mse:.3f} "
          f"({100 * (before_mse - after_mse) / before_mse:+.1f}% reduction)")
    print(f"target MAE: {before_mae:.3f} -> {after_mae:.3f} "
          f"({100 * (before_mae - after_mae) / before_mae:+.1f}% reduction)")


if __name__ == "__main__":
    main()
