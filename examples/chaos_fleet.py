"""A fault-injected fleet run through the workload simulator.

This walkthrough builds a bursty, drifting multi-user workload *in code*
(the same :class:`repro.sim.WorkloadSpec` a JSON scenario file describes),
then replays it three times through a live serving gateway:

1. calm — no faults, establishing the baseline transcript;
2. ``shard_crash`` — a shard worker pool is killed and respawned mid-run;
   service state survives, so the transcript must be *byte-identical* to
   the calm run;
3. ``wire_chaos`` — duplicated, reordered, junked, and corrupted wire
   lines; every mutated line must still come back as a typed envelope with
   all invariants green.

Run it with::

    PYTHONPATH=src python examples/chaos_fleet.py
"""

from repro.sim import WorkloadSpec, run_simulation

BASE = {
    "task": "housing",
    "scale": "tiny",
    "scheme": "tasfar",
    "seed": 21,
    "n_ticks": 8,
    "n_shards": 2,
    "shard_workers": 2,
    "min_adapt_events": 24,
    "readapt_budget": 48,
    # Short, deterministic adaptation schedules keep the demo quick.
    "config_overrides": {
        "adaptation_epochs": 3,
        "min_adaptation_epochs": 1,
        "n_mc_samples": 8,
        "n_segments": 5,
        "early_stop": False,
    },
    "fleets": [
        {
            "name": "steady",
            "n_users": 2,
            "drift": "gradual",
            "batch_size": 12,
            "arrival": {"kind": "every", "every": 1},
            "predict_every": 2,
            "predict_duplicates": 1,
        },
        {
            "name": "bursty",
            "n_users": 2,
            "drift": "sudden",
            "batch_size": 12,
            "arrival": {"kind": "bursty", "rate": 0.3, "burst_every": 3, "burst_size": 2},
            "predict_every": 3,
            "predict_duplicates": 2,
            "report_every": 4,
        },
    ],
}


def run(fault_plan: str, fault_options: dict | None = None):
    spec = WorkloadSpec.from_dict(
        {**BASE, "fault_plan": fault_plan, "fault_options": fault_options or {}}
    )
    result = run_simulation(spec)
    print(result.summary())
    print()
    return result


def main() -> None:
    print("=== calm run (fault_plan=none) ===")
    calm = run("none")

    print("=== shard_crash: worker pools die and respawn mid-run ===")
    crashed = run("shard_crash", {"every": 3})
    identical = crashed.transcript_text == calm.transcript_text
    print(f"transcript identical to the calm run: {identical}")
    assert identical, "worker crashes must be invisible in the answers"
    print()

    print("=== wire_chaos: duplicates, reordering, junk, corruption ===")
    chaos = run("wire_chaos", {"duplicate_rate": 0.3, "junk_rate": 0.2, "corrupt_rate": 0.2})
    print(
        f"{chaos.n_requests} lines answered: {chaos.n_ok} ok, "
        f"{chaos.n_errors} typed error envelopes, zero crashes"
    )

    for result, label in ((calm, "calm"), (crashed, "shard_crash"), (chaos, "wire_chaos")):
        assert result.ok, f"{label}: invariants failed: {result.invariant_report}"
    print("\nall invariants green under every fault plan")


if __name__ == "__main__":
    main()
