"""Serve per-user adaptation through the multi-target AdaptationService.

This mirrors ``examples/pdr_user_adaptation.py`` — the paper's main
experiment, one adapted model per pedestrian — but drives it the way a
deployment would: the source model and its calibration are registered once
with an :class:`repro.runtime.AdaptationService`, and every user is adapted
through ``adapt_many`` on a worker pool.  Per-target seeding makes the
parallel run bit-identical to a serial one, adapted models live in an LRU
cache, and each user leaves behind a JSON-serializable adaptation report.

Run it with::

    python examples/multi_user_service.py

The same flow is available from the command line::

    python -m repro.cli adapt-many --task pdr --scale small --jobs 4
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.core import Tasfar, TasfarConfig
from repro.data import make_pdr_task
from repro.metrics import step_error
from repro.runtime import AdaptationService


def main() -> None:
    rng = np.random.default_rng(0)

    task = make_pdr_task(
        n_seen_users=4,
        n_unseen_users=3,
        n_source_trajectories=3,
        n_target_trajectories=3,
        steps_per_trajectory=80,
        window=20,
        seed=0,
    )

    print("training the RoNIN-style source model on the pooled source trajectories ...")
    model = nn.build_tcn_regressor(
        in_channels=task.metadata["n_channels"], window_length=20,
        output_dim=2, channel_sizes=(16, 16), dropout=0.2, seed=0,
    )
    trainer = nn.Trainer(model, lr=2e-3)
    trainer.fit(task.source_train, epochs=60, batch_size=32, rng=rng)

    # Source-side calibration happens once, before "deployment".
    config = TasfarConfig(seed=0)
    calibration = Tasfar(config).calibrate_on_source(
        model, task.source_calibration.inputs, task.source_calibration.targets
    )
    print(f"confidence threshold tau = {calibration.threshold:.4f}\n")

    # Register once, adapt the whole fleet of users on a worker pool.  The
    # service never sees labels; all evaluation below is done caller-side.
    # max_cached_models bounds memory: evicted users keep their report and
    # fall back to source-model predictions until re-adapted, so keep the
    # cache at least as large as the fleet we are about to evaluate.
    service = AdaptationService(model, calibration, config=config, max_cached_models=len(task.scenarios))
    fleet = {scenario.name: scenario.adaptation.inputs for scenario in task.scenarios}
    print(f"adapting {len(fleet)} users on 4 worker threads ...")
    reports = service.adapt_many(fleet, jobs=4)

    print(f"\n{'user':<16}{'group':<8}{'conf/unc':>10}{'STE before':>12}{'STE after':>12}{'secs':>7}")
    for scenario in task.scenarios:
        report = reports[scenario.name]
        before = step_error(trainer.predict(scenario.adaptation.inputs), scenario.adaptation.targets)
        after = step_error(
            service.predict(scenario.name, scenario.adaptation.inputs),
            scenario.adaptation.targets,
        )
        split = f"{report.n_confident}/{report.n_uncertain}"
        print(
            f"{scenario.name:<16}{scenario.metadata['group']:<8}{split:>10}"
            f"{before:>12.3f}{after:>12.3f}{report.duration_seconds:>7.2f}"
        )

    # Only the most recent adapted models are cached; every user keeps a
    # JSON-ready report (evicted users can simply be re-adapted — the
    # per-target seed makes that reproduce the same model).
    print(f"\ncached adapted models: {service.cached_targets}")
    example = reports[task.scenarios[0].name]
    print(f"example report for {example.target_id}:")
    print(example.to_json(indent=2))


if __name__ == "__main__":
    main()
