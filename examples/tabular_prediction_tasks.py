"""Tabular prediction tasks: housing prices and taxi-trip durations.

This mirrors the paper's two generality experiments (Fig. 21): an MLP trained
on one district is adapted, source-free, to a different district whose label
distribution differs (coastal housing prices, Manhattan trip durations).  The
script also compares TASFAR against the other adaptation schemes through the
shared baseline interface.

Run it with::

    python examples/tabular_prediction_tasks.py
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.baselines import DataFree, TasfarAdapter, make_adapter
from repro.core import TasfarConfig
from repro.data import make_housing_task, make_taxi_task
from repro.metrics import mse, rmsle


def run_task(task, metric, metric_name, schemes=("baseline", "augfree", "datafree", "tasfar")) -> None:
    rng = np.random.default_rng(0)
    model = nn.build_mlp(
        input_dim=task.source_train.inputs.shape[1], output_dim=1,
        hidden_dims=(32, 16), dropout=0.2, seed=0,
    )
    trainer = nn.Trainer(model, lr=3e-3)
    trainer.fit(task.source_train, epochs=50, batch_size=32, rng=rng)

    scenario = task.scenarios[0]
    baseline_error = metric(trainer.predict(scenario.test.inputs), scenario.test.targets)
    print(f"\n=== {task.name}: source model {metric_name} on target test set = {baseline_error:.3f}")

    for scheme in schemes:
        adapter = make_adapter(scheme)
        if isinstance(adapter, TasfarAdapter):
            adapter = TasfarAdapter(TasfarConfig(seed=0))
            adapter.calibrate(model, task.source_calibration.inputs, task.source_calibration.targets)
        if isinstance(adapter, DataFree):
            adapter.fit_source_statistics(model, task.source_calibration.inputs)
        result = adapter.adapt(model, scenario.adaptation.inputs)
        adapted = nn.Trainer(result.target_model)
        error = metric(adapted.predict(scenario.test.inputs), scenario.test.targets)
        reduction = 100 * (baseline_error - error) / baseline_error if baseline_error else 0.0
        print(f"  {scheme:<10} {metric_name} = {error:.3f}  ({reduction:+.1f}% vs source model)")


def main() -> None:
    housing = make_housing_task(n_source=500, n_target=250, seed=0)
    taxi = make_taxi_task(n_source=500, n_target=250, seed=0)
    run_task(housing, mse, "MSE")
    run_task(taxi, rmsle, "RMSLE")


if __name__ == "__main__":
    main()
