"""Crowd counting: adapt an MCNN-style counter to new scenes, per scene.

This mirrors the paper's Shanghaitech Part A -> Part B experiment (Table I and
Fig. 19/20): a multi-column CNN counter is trained on a broad source
distribution and adapted to three target scenes with different crowd densities
and camera responses.  The script compares per-scene adaptation against one
pooled adaptation over all scenes — the partitioning study of Fig. 20.

Run it with::

    python examples/crowd_counting_scenes.py
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.core import Tasfar, TasfarConfig
from repro.data import make_crowd_task, merge_scenarios
from repro.metrics import mae, mse


def main() -> None:
    rng = np.random.default_rng(0)
    task = make_crowd_task(
        n_source_images=150, n_target_images_per_scene=50, image_size=12, seed=0
    )

    print("training the MCNN-style source counter ...")
    model = nn.build_mcnn_counter(image_size=12, column_channels=(3, 4, 5), dropout=0.2, seed=0)
    trainer = nn.Trainer(model, lr=2e-3)
    trainer.fit(task.source_train, epochs=40, batch_size=16, rng=rng)

    tasfar = Tasfar(TasfarConfig(seed=0))
    calibration = tasfar.calibrate_on_source(
        model, task.source_calibration.inputs, task.source_calibration.targets
    )

    # Per-scene (partitioned) adaptation — the setting the paper recommends.
    print(f"\n{'scene':<10}{'count mean':>11}{'MAE before':>12}{'MAE after':>12}{'MSE before':>12}{'MSE after':>12}")
    per_scene_models = {}
    for scenario in task.scenarios:
        result = tasfar.adapt(model, scenario.adaptation.inputs, calibration)
        per_scene_models[scenario.name] = result.target_model
        adapted = nn.Trainer(result.target_model)
        print(
            f"{scenario.name:<10}{scenario.metadata['count_mean']:>11.0f}"
            f"{mae(trainer.predict(scenario.test.inputs), scenario.test.targets):>12.2f}"
            f"{mae(adapted.predict(scenario.test.inputs), scenario.test.targets):>12.2f}"
            f"{mse(trainer.predict(scenario.test.inputs), scenario.test.targets):>12.1f}"
            f"{mse(adapted.predict(scenario.test.inputs), scenario.test.targets):>12.1f}"
        )

    # Pooled adaptation (no partitioning): one adaptation over all scenes.
    pooled = merge_scenarios(task.scenarios, name="pooled")
    pooled_result = tasfar.adapt(model, pooled.adaptation.inputs, calibration)
    pooled_trainer = nn.Trainer(pooled_result.target_model)
    print("\npartitioned vs. pooled adaptation (test MAE per scene):")
    for scenario in task.scenarios:
        partitioned = nn.Trainer(per_scene_models[scenario.name])
        print(
            f"  {scenario.name}: partitioned "
            f"{mae(partitioned.predict(scenario.test.inputs), scenario.test.targets):.2f}  "
            f"pooled {mae(pooled_trainer.predict(scenario.test.inputs), scenario.test.targets):.2f}"
        )


if __name__ == "__main__":
    main()
