"""Pedestrian dead reckoning: adapt a TCN step regressor to individual users.

This mirrors the paper's main experiment (Section IV-B2): a temporal
convolutional network trained on a population of users is adapted, one user at
a time, with that user's unlabeled IMU windows.  The script reports the step
error (STE) and the relative trajectory error (RTE) before and after
adaptation for every user, split into the seen and unseen groups.

Run it with::

    python examples/pdr_user_adaptation.py
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.core import Tasfar, TasfarConfig
from repro.data import make_pdr_task
from repro.metrics import per_trajectory_rte, step_error


def main() -> None:
    rng = np.random.default_rng(0)

    # A scaled-down version of the paper's setup: a few users, each with
    # several walking trajectories; 80% of each user's trajectories are used
    # for adaptation and the rest for testing.
    task = make_pdr_task(
        n_seen_users=4,
        n_unseen_users=3,
        n_source_trajectories=3,
        n_target_trajectories=3,
        steps_per_trajectory=80,
        window=20,
        seed=0,
    )

    print("training the RoNIN-style source model on the pooled source trajectories ...")
    model = nn.build_tcn_regressor(
        in_channels=task.metadata["n_channels"], window_length=20,
        output_dim=2, channel_sizes=(16, 16), dropout=0.2, seed=0,
    )
    trainer = nn.Trainer(model, lr=2e-3)
    trainer.fit(task.source_train, epochs=60, batch_size=32, rng=rng)

    tasfar = Tasfar(TasfarConfig(seed=0))
    calibration = tasfar.calibrate_on_source(
        model, task.source_calibration.inputs, task.source_calibration.targets
    )
    print(f"confidence threshold tau = {calibration.threshold:.4f}\n")

    # The paper reports results on the adaptation set unless stated otherwise
    # (Section IV-A); the test trajectories are shown as the RTE column.
    print(f"{'user':<16}{'group':<8}{'STE before':>12}{'STE after':>12}{'reduction':>11}{'mean RTE drop':>15}")
    for scenario in task.scenarios:
        result = tasfar.adapt(model, scenario.adaptation.inputs, calibration)
        adapted = nn.Trainer(result.target_model)

        before = step_error(trainer.predict(scenario.adaptation.inputs), scenario.adaptation.targets)
        after = step_error(adapted.predict(scenario.adaptation.inputs), scenario.adaptation.targets)

        trajectory_ids = scenario.metadata["test_trajectory_ids"]
        rte_before = per_trajectory_rte(
            trainer.predict(scenario.test.inputs), scenario.test.targets, trajectory_ids
        )
        rte_after = per_trajectory_rte(
            adapted.predict(scenario.test.inputs), scenario.test.targets, trajectory_ids
        )
        rte_drop = np.mean([rte_before[t] - rte_after[t] for t in rte_before])

        reduction = 100 * (before - after) / before if before else 0.0
        print(
            f"{scenario.name:<16}{scenario.metadata['group']:<8}"
            f"{before:>12.3f}{after:>12.3f}{reduction:>10.1f}%{rte_drop:>14.2f}m"
        )


if __name__ == "__main__":
    main()
