"""Serve a fleet through the typed gateway: one front door, four verbs.

This walkthrough drives the whole serving story end to end:

1. build a :class:`repro.serve.Gateway` straight from registry names
   (task ``housing`` + scheme ``tasfar``) — the bundle cache trains and
   calibrates the source model behind the scenes;
2. adapt every target segment through typed :class:`AdaptRequest`\\ s;
3. fire a bursty multi-target prediction load through ``submit_many`` and
   watch cross-target micro-batching coalesce it (bit-identical to
   one-at-a-time submits, several times faster);
4. stream drifting events through :class:`StreamRequest`\\ s and pull
   :class:`ReportRequest` summaries — all as versioned JSON envelopes.

Run it with::

    python examples/gateway_serving.py

The same surface is reachable from outside Python::

    printf '%s\n' \
        '{"kind": "adapt", "target_id": "coastal", "inputs": [[...]]}' \
      | python -m repro.cli serve --task housing --scale tiny
"""

from __future__ import annotations

import time

import numpy as np

from repro.experiments import get_bundle
from repro.serve import AdaptRequest, Gateway, PredictRequest, ReportRequest

TASK, SCALE, SEED = "pdr", "small", 0


def main() -> None:
    print(f"standing the {TASK!r} task up behind a 2-shard gateway ...")
    gateway = Gateway.from_task(
        TASK, scheme="tasfar", scale=SCALE, seed=SEED, n_shards=2, shard_workers=4
    )
    bundle = get_bundle(TASK, SCALE, SEED)
    scenarios = {scenario.name: scenario for scenario in bundle.task.scenarios}

    # -- adapt the fleet through typed requests ------------------------------
    envelopes = gateway.submit_many(
        [
            AdaptRequest(name, scenario.adaptation.inputs)
            for name, scenario in scenarios.items()
        ]
    )
    for envelope in envelopes:
        report = envelope.payload["report"]
        print(
            f"  adapted {envelope.target_id:<12} on shard {envelope.payload['shard']}"
            f"  epochs={len(report['losses'])}  {envelope.duration_seconds * 1e3:6.1f} ms"
        )

    # -- bursty multi-target prediction, micro-batched -----------------------
    rng = np.random.default_rng(7)
    names = list(scenarios)
    requests = []
    for burst in range(120):
        name = names[burst % len(names)] if burst % 3 else "unknown_guest"
        window = scenarios[names[burst % len(names)]].adaptation.inputs[
            rng.integers(0, 16) : rng.integers(17, 40)
        ]
        requests.append(PredictRequest(name, window))

    start = time.perf_counter()
    batched = gateway.submit_many(requests)
    batched_ms = (time.perf_counter() - start) * 1e3
    start = time.perf_counter()
    singles = [gateway.submit(request) for request in requests]
    per_request_ms = (time.perf_counter() - start) * 1e3
    for one, many in zip(singles, batched):
        np.testing.assert_array_equal(
            one.payload["prediction"], many.payload["prediction"]
        )
    coalesced = sum(envelope.payload["coalesced"] for envelope in batched)
    fallbacks = sum(envelope.payload["model"] == "source" for envelope in batched)
    print(
        f"\nburst of {len(requests)} predicts: micro-batched {batched_ms:.1f} ms vs "
        f"per-request {per_request_ms:.1f} ms ({per_request_ms / batched_ms:.1f}x), "
        f"bit-identical; {coalesced} coalesced, {fallbacks} source fallbacks"
    )

    # -- versioned envelopes are the wire format -----------------------------
    envelope = gateway.submit(ReportRequest(names[0]))
    print(f"\none envelope on the wire ({envelope.schema}):")
    print(envelope.to_json()[:200] + " ...")

    fleet = gateway.submit(ReportRequest())
    print(f"\nfleet report: {sorted(fleet.payload['reports'])}")
    gateway.close()


if __name__ == "__main__":
    main()
