"""Serve every adaptation scheme through one AdaptationService surface.

The strategy registry puts TASFAR and all five comparison baselines behind
the same ``adapt()`` interface, so the multi-target service — worker pool,
LRU model cache, JSON reports — works identically for each of them.  This
example adapts the housing task's target segment with every registered
scheme and prints a small leaderboard.

Run with::

    PYTHONPATH=src python examples/any_scheme_service.py
"""

import numpy as np

from repro.core import TasfarConfig
from repro.engine import create_strategy, strategy_names
from repro.experiments import get_bundle
from repro.metrics import format_table, mse
from repro.runtime import AdaptationService


def main() -> None:
    bundle = get_bundle("housing", scale="tiny", seed=0)
    scenario = bundle.task.scenarios[0]
    targets = {scenario.name: scenario.adaptation.inputs}

    rows = []
    for scheme in strategy_names():
        strategy = create_strategy(
            scheme,
            config=TasfarConfig(seed=0),
            epochs=bundle.scale.baseline_epochs,
            seed=0,
        ).prepare(bundle.source_model, bundle.resources(max_source_samples=400))

        service = AdaptationService(
            bundle.source_model, bundle.calibration, strategy=strategy
        )
        report = service.adapt_many(targets, jobs=1)[scenario.name]
        after = mse(
            service.predict(scenario.name, scenario.test.inputs), scenario.test.targets
        )
        rows.append(
            [scheme, len(report.losses), round(after, 4), round(report.duration_seconds, 3)]
        )

    before = mse(bundle.predict(scenario.test.inputs), scenario.test.targets)
    print(f"housing / {scenario.name}: source-model test MSE {before:.4f}")
    print(format_table(["scheme", "epochs", "test_mse", "secs"], rows))


if __name__ == "__main__":
    main()
